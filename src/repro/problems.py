"""Canonical problem definitions used by tests, examples and benchmarks.

The two verification problems of the paper (§V-B), packaged with their
meshes, partitions, loads, boundary conditions and analytic solutions:

* :func:`poisson_problem` — ``∇²u + sin(2πx)sin(2πy)sin(2πz) = 0`` on the
  unit cube, homogeneous Dirichlet boundary.
* :func:`elastic_bar_problem` — prismatic bar hanging under its own
  weight, uniform traction on the top face, exact Timoshenko solution
  prescribed on the top-face nodes (pinning rigid modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fem.analytic import (
    bar_body_force,
    bar_exact_displacement,
    bar_top_traction,
    poisson_exact,
    poisson_forcing,
)
from repro.fem.dirichlet import DirichletBC
from repro.fem.material import IsotropicElasticity
from repro.fem.operators import (
    ElasticityOperator,
    GraphLaplacianOperator,
    Operator,
    PoissonOperator,
)
from repro.mesh.element import ElementType, corner_faces
from repro.mesh.mesh import Mesh
from repro.mesh.structured import box_hex_mesh
from repro.mesh.unstructured import box_tet_mesh, jittered_hex_mesh
from repro.partition.interface import Partition, build_partition
from repro.util.arrays import INDEX_DTYPE

__all__ = [
    "ProblemSpec",
    "poisson_problem",
    "elastic_bar_problem",
    "graph_laplacian_problem",
]


@dataclass
class ProblemSpec:
    """A fully-specified distributed FEM problem."""

    name: str
    mesh: Mesh
    partition: Partition
    operator: Operator
    body_force: Callable | np.ndarray | None
    bcs: list[DirichletBC]  # in renumbered node ids
    tractions: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )  # (global element ids, face ids, traction vector)
    analytic: Callable[[np.ndarray], np.ndarray] | None = None
    #: optional absolute per-element stiffness scale ``(n_elements,)`` in
    #: mesh element order (XFEM-style softening; managed by
    #: :mod:`repro.adapt` — ``None`` means all ones)
    elem_scale: np.ndarray | None = None

    def rank_elem_scale(self, rank: int) -> np.ndarray | None:
        """Per-element scale restricted to one rank's local elements."""
        if self.elem_scale is None:
            return None
        return self.elem_scale[self.partition.local(rank).elements]

    @property
    def n_parts(self) -> int:
        return self.partition.n_parts

    @property
    def n_dofs(self) -> int:
        return self.mesh.n_nodes * self.operator.ndpn

    def rank_tractions(
        self, rank: int
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Traction specs restricted to rank-local element indices."""
        lm = self.partition.local(rank)
        out = []
        for elems, faces, t in self.tractions:
            pos = np.searchsorted(lm.elements, elems)
            pos = np.clip(pos, 0, max(lm.elements.size - 1, 0))
            hit = (
                lm.elements[pos] == elems
                if lm.elements.size
                else np.zeros(elems.shape, dtype=bool)
            )
            out.append((pos[hit].astype(INDEX_DTYPE), faces[hit], t))
        return out

    def analytic_owned(self, rank: int) -> np.ndarray | None:
        """Exact owned dof values for error measurement (flat)."""
        if self.analytic is None:
            return None
        coords = self.partition.owned_coords(rank)
        if coords.shape[0] == 0:
            return np.zeros(0)
        return np.asarray(self.analytic(coords)).reshape(
            coords.shape[0], -1
        ).reshape(-1)


def poisson_problem(
    nel: int | tuple[int, int, int],
    n_parts: int,
    etype: ElementType = ElementType.HEX8,
    part_method: str | None = None,
    jitter: float = 0.25,
    seed: int = 0,
) -> ProblemSpec:
    """The paper's Poisson verification problem on the unit cube."""
    nx, ny, nz = (nel, nel, nel) if isinstance(nel, int) else nel
    if etype.is_hex:
        mesh = box_hex_mesh(nx, ny, nz, etype)
        method = part_method or "slab"
    else:
        mesh = box_tet_mesh(nx, ny, nz, etype, jitter=jitter, seed=seed)
        method = part_method or "graph"
    part = build_partition(mesh, n_parts, method=method)
    bc = DirichletBC(part.boundary_nodes_new(), 0.0, ndpn=1)
    return ProblemSpec(
        name=f"poisson-{etype.value}",
        mesh=mesh,
        partition=part,
        operator=PoissonOperator(),
        body_force=lambda x: poisson_forcing(x)[..., None],
        bcs=[bc],
        analytic=poisson_exact,
    )


def graph_laplacian_problem(
    nel: int | tuple[int, int, int],
    n_parts: int,
    etype: ElementType = ElementType.TET4,
    part_method: str | None = None,
    seed: int = 0,
    drop: float = 0.35,
    jitter: float = 0.3,
) -> ProblemSpec:
    """Seeded graph-Laplacian problem on an unstructured mesh — the
    non-FEM sparsity scenario for the SELL-C-sigma backend.

    The mesh/partition machinery supplies the adjacency; the operator is
    a weighted clique Laplacian with deterministic coordinate-hashed
    edge weights and a ``drop`` fraction of zeroed edges (see
    :class:`~repro.fem.operators.GraphLaplacianOperator`).  A jittered
    tet mesh gives irregular node valence, so the assembled rows have
    the skewed length distribution sliced-ELL formats exist to handle.
    Edge weights are a pure function of geometry and ``seed`` — the same
    edge gets the same weight on every rank and in every partitioning —
    so the problem is deterministic and the SELL-vs-CSR comparison is
    bitwise on any fixed partition.
    """
    nx, ny, nz = (nel, nel, nel) if isinstance(nel, int) else nel
    if etype.is_hex:
        mesh = jittered_hex_mesh(nx, ny, nz, etype, jitter=jitter, seed=seed)
    else:
        mesh = box_tet_mesh(nx, ny, nz, etype, jitter=jitter, seed=seed)
    part = build_partition(mesh, n_parts, method=part_method or "graph")
    bc = DirichletBC(part.boundary_nodes_new(), 0.0, ndpn=1)
    return ProblemSpec(
        name=f"graphlap-{etype.value}",
        mesh=mesh,
        partition=part,
        operator=GraphLaplacianOperator(seed=seed, drop=drop),
        body_force=lambda x: np.ones(x.shape[:-1] + (1,)),
        bcs=[bc],
        analytic=None,
    )


def elastic_bar_problem(
    nel: int | tuple[int, int, int],
    n_parts: int,
    etype: ElementType = ElementType.HEX20,
    material: IsotropicElasticity | None = None,
    lengths: tuple[float, float, float] = (1.0, 1.0, 2.0),
    part_method: str | None = None,
    unstructured: bool = False,
    jitter: float = 0.2,
    seed: int = 0,
    pin: str = "minimal",
) -> ProblemSpec:
    """The hanging elastic bar (Timoshenko & Goodier), origin at the
    bottom-face centre, hung from the top face ``z = Lz``.

    Loads: gravity body force and uniform traction on the top face.

    ``pin`` selects how rigid modes are removed:

    * ``"minimal"`` — 6 point constraints on top-face nodes (exact values):
      all components at the node nearest the face centre, ``uy``/``uz`` at
      a node on the +x side, ``uz`` at a node on the +y side.  The top
      traction is load-bearing, as in the paper's setup ("hung from its
      top face center").
    * ``"top_face"`` — exact displacement prescribed on every top-face
      node (more constrained; the traction becomes redundant).
    """
    mat = material or IsotropicElasticity(E=100.0, nu=0.3, rho=1.0, g=1.0)
    nx, ny, nz = (nel, nel, nel) if isinstance(nel, int) else nel
    Lx, Ly, Lz = lengths
    origin = (-Lx / 2, -Ly / 2, 0.0)
    if etype.is_tet:
        mesh = box_tet_mesh(
            nx, ny, nz, etype, lengths=lengths, origin=origin,
            jitter=jitter, seed=seed,
        )
        method = part_method or "graph"
    elif unstructured:
        mesh = jittered_hex_mesh(
            nx, ny, nz, etype, lengths=lengths, origin=origin,
            jitter=jitter, seed=seed,
        )
        method = part_method or "graph"
    else:
        mesh = box_hex_mesh(nx, ny, nz, etype, lengths=lengths, origin=origin)
        method = part_method or "slab"
    part = build_partition(mesh, n_parts, method=method)

    # top-face traction (elements owning a boundary face at z = Lz)
    bfaces = mesh.boundary_faces()
    cf = corner_faces(etype)
    top_pairs = []
    for e, f in bfaces:
        nodes = mesh.conn[e, list(cf[f])]
        if np.allclose(mesh.coords[nodes][:, 2], Lz, atol=1e-9):
            top_pairs.append((e, f))
    top_pairs = np.asarray(top_pairs, dtype=INDEX_DTYPE).reshape(-1, 2)

    # pin rigid modes with exact displacement values
    coords_new = part.coords_by_new_id()
    top_nodes = np.flatnonzero(
        np.abs(coords_new[:, 2] - Lz) < 1e-9
    ).astype(INDEX_DTYPE)
    exact = lambda x: bar_exact_displacement(x, mat, Lz)  # noqa: E731
    if pin == "top_face":
        bcs = [DirichletBC(top_nodes, exact, ndpn=3)]
    elif pin == "minimal":
        tc = coords_new[top_nodes]
        center = top_nodes[np.argmin(tc[:, 0] ** 2 + tc[:, 1] ** 2)]
        px = top_nodes[np.argmin((tc[:, 0] - Lx) ** 2 + tc[:, 1] ** 2)]
        py = top_nodes[np.argmin(tc[:, 0] ** 2 + (tc[:, 1] - Ly) ** 2)]
        bcs = [
            DirichletBC([center], exact, ndpn=3),
            DirichletBC([px], exact, ndpn=3, components=(1, 2)),
            DirichletBC([py], exact, ndpn=3, components=(2,)),
        ]
    else:
        raise ValueError(f"unknown pin mode {pin!r}")
    return ProblemSpec(
        name=f"elastic-bar-{etype.value}",
        mesh=mesh,
        partition=part,
        operator=ElasticityOperator(material=mat),
        body_force=bar_body_force(mat),
        bcs=bcs,
        tractions=[
            (top_pairs[:, 0], top_pairs[:, 1], bar_top_traction(mat, Lz))
        ],
        analytic=exact,
    )
