"""Unstructured meshes — the Gmsh substitute.

The paper generates unstructured tetrahedral (Tet10) and hexahedral (Hex27)
meshes with Gmsh.  We reproduce the *properties that matter for the
experiments* — irregular connectivity, irregular partition boundaries, and
non-uniform element geometry — by:

* Freudenthal (Kuhn) 6-tet subdivision of a structured hex grid, which
  yields a conforming tetrahedral mesh, followed by
* random jitter of interior vertices, and
* promotion to quadratic elements by inserting unique mid-edge (and face /
  centre) nodes.

These meshes are then partitioned with the graph partitioner
(:mod:`repro.partition.graph`), giving the irregular sparsity and
communication patterns that drive Figs. 7, 9 and 11.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.element import (
    ElementType,
    HEX_EDGES,
    HEX_FACES,
    TET_EDGES,
)
from repro.mesh.mesh import Mesh
from repro.mesh.structured import box_hex_mesh
from repro.util.arrays import INDEX_DTYPE

__all__ = [
    "box_tet_mesh",
    "jittered_hex_mesh",
    "jitter_interior_nodes",
    "promote_mesh",
]

# The six permutations of (x, y, z) axes, with parity, defining the Kuhn
# subdivision of the unit cube.  Every tet is (c000, c_a, c_ab, c111) for an
# axis path a, then b; odd permutations are reordered for positive volume.
_PERMS = (
    ((0, 1, 2), 0),
    ((0, 2, 1), 1),
    ((1, 0, 2), 1),
    ((1, 2, 0), 0),
    ((2, 0, 1), 0),
    ((2, 1, 0), 1),
)


def _corner_bits(axes: tuple[int, int, int]) -> tuple[int, int, int, int]:
    """Corner ids (bit-coded i + 2j + 4k) along the axis path."""
    c = [0, 0, 0]
    ids = [0]
    for ax in axes:
        c[ax] = 1
        ids.append(c[0] + 2 * c[1] + 4 * c[2])
    return tuple(ids)


def _unique_rows(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(unique_rows, inverse) for a 2-D integer key array."""
    view = np.ascontiguousarray(keys).view(
        [("", keys.dtype)] * keys.shape[1]
    ).reshape(-1)
    _, first, inverse = np.unique(view, return_index=True, return_inverse=True)
    return keys[first], inverse


def jitter_interior_nodes(
    mesh: Mesh, amount: float, seed: int = 0
) -> Mesh:
    """Randomly displace interior nodes by up to ``amount`` of the local
    spacing (estimated from the shortest element edge)."""
    if amount <= 0:
        return mesh
    rng = np.random.default_rng(seed)
    coords = mesh.coords.copy()
    interior = np.ones(mesh.n_nodes, dtype=bool)
    interior[mesh.boundary_nodes()] = False
    # per-axis local spacing, estimated from the first element's extent
    c = mesh.coords[mesh.conn[0, : mesh.etype.corner_count]]
    h = c.max(axis=0) - c.min(axis=0)
    disp = rng.uniform(-0.5, 0.5, size=(int(interior.sum()), 3)) * amount * h
    coords[interior] += disp
    return Mesh(coords, mesh.conn.copy(), mesh.etype)


def _tetrahedralize(hex_mesh: Mesh) -> Mesh:
    """Split each Hex8 into 6 conforming, positively-oriented tets."""
    if hex_mesh.etype is not ElementType.HEX8:
        raise ValueError("tetrahedralization expects a HEX8 mesh")
    conn = hex_mesh.conn
    # map corner bit-code (i + 2j + 4k) to our HEX8 local ordering
    bit_to_local = np.array([0, 1, 3, 2, 4, 5, 7, 6], dtype=INDEX_DTYPE)
    tets = []
    for axes, parity in _PERMS:
        bits = _corner_bits(axes)
        locs = bit_to_local[list(bits)]
        t = conn[:, locs]
        if parity:  # restore positive orientation
            t = t[:, [0, 2, 1, 3]]
        tets.append(t)
    tet_conn = np.concatenate(tets, axis=0)
    # interleave so the 6 tets of each hex are consecutive (better locality)
    E = conn.shape[0]
    order = (np.arange(6 * E).reshape(6, E).T).reshape(-1)
    return Mesh(hex_mesh.coords, tet_conn[order], ElementType.TET4)


def promote_mesh(mesh: Mesh, target: ElementType) -> Mesh:
    """Promote a linear mesh to a quadratic one by inserting unique
    mid-edge (and, for HEX27, face-centre and cell-centre) nodes.

    Supported promotions: HEX8→HEX20, HEX8→HEX27, TET4→TET10.
    """
    pairs = {
        (ElementType.HEX8, ElementType.HEX20): HEX_EDGES,
        (ElementType.HEX8, ElementType.HEX27): HEX_EDGES,
        (ElementType.TET4, ElementType.TET10): TET_EDGES,
    }
    key = (mesh.etype, target)
    if key not in pairs:
        raise ValueError(f"unsupported promotion {mesh.etype} -> {target}")
    edges = pairs[key]
    E = mesh.n_elements
    coords = [mesh.coords]
    conn_parts = [mesh.conn]
    next_id = mesh.n_nodes

    edge_keys = np.sort(
        np.stack(
            [mesh.conn[:, [a, b]] for a, b in edges], axis=1
        ).reshape(-1, 2),
        axis=1,
    )
    uniq, inverse = _unique_rows(edge_keys)
    coords.append(mesh.coords[uniq].mean(axis=1))
    conn_parts.append(
        (next_id + inverse).reshape(E, len(edges)).astype(INDEX_DTYPE)
    )
    next_id += uniq.shape[0]

    if target is ElementType.HEX27:
        face_keys = np.sort(
            np.stack(
                [mesh.conn[:, list(f)] for f in HEX_FACES], axis=1
            ).reshape(-1, 4),
            axis=1,
        )
        fu, finv = _unique_rows(face_keys)
        coords.append(mesh.coords[fu].mean(axis=1))
        conn_parts.append(
            (next_id + finv).reshape(E, len(HEX_FACES)).astype(INDEX_DTYPE)
        )
        next_id += fu.shape[0]
        coords.append(mesh.coords[mesh.conn].mean(axis=1))
        conn_parts.append(
            (next_id + np.arange(E, dtype=INDEX_DTYPE)).reshape(E, 1)
        )

    return Mesh(
        np.vstack(coords), np.concatenate(conn_parts, axis=1), target
    )


def box_tet_mesh(
    nx: int,
    ny: int,
    nz: int,
    etype: ElementType = ElementType.TET4,
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    jitter: float = 0.25,
    seed: int = 0,
) -> Mesh:
    """Unstructured tetrahedral box mesh (``6 * nx * ny * nz`` tets).

    ``jitter`` perturbs interior vertices by that fraction of the grid
    spacing, breaking the structured geometry; ``jitter=0`` gives a regular
    Kuhn triangulation.
    """
    if etype not in (ElementType.TET4, ElementType.TET10):
        raise ValueError("box_tet_mesh builds TET4 or TET10 meshes")
    hexes = box_hex_mesh(nx, ny, nz, ElementType.HEX8, lengths, origin)
    tets = _tetrahedralize(hexes)
    tets = jitter_interior_nodes(tets, jitter, seed)
    if etype is ElementType.TET10:
        tets = promote_mesh(tets, ElementType.TET10)
    return tets


def jittered_hex_mesh(
    nx: int,
    ny: int,
    nz: int,
    etype: ElementType,
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    jitter: float = 0.2,
    seed: int = 0,
) -> Mesh:
    """Geometrically irregular hex mesh (HEX8/HEX20/HEX27).

    Interior vertices of the underlying linear grid are jittered, then the
    mesh is promoted to the requested quadratic type, so mid-edge / face /
    centre nodes stay consistent with the perturbed geometry.
    """
    base = box_hex_mesh(nx, ny, nz, ElementType.HEX8, lengths, origin)
    base = jitter_interior_nodes(base, jitter, seed)
    if etype is ElementType.HEX8:
        return base
    return promote_mesh(base, etype)
