"""Uniform mesh refinement.

Supports convergence studies (the paper's §V-B protocol "subsequently
doubled the elements in all directions") on arbitrary — not only box —
meshes: each Hex8 splits into 8 children through edge/face/centre points,
each Tet4 into 8 children via the red (regular) subdivision.  Quadratic
meshes are refined on their corner skeleton and re-promoted.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.element import ElementType, HEX_EDGES, HEX_FACES, TET_EDGES
from repro.mesh.mesh import Mesh
from repro.mesh.unstructured import _unique_rows, promote_mesh
from repro.util.arrays import INDEX_DTYPE

__all__ = ["refine_uniform"]


def refine_uniform(mesh: Mesh, levels: int = 1) -> Mesh:
    """Refine ``mesh`` uniformly ``levels`` times (8x elements per level)."""
    if levels < 0:
        raise ValueError("levels must be >= 0")
    out = mesh
    for _ in range(levels):
        out = _refine_once(out)
    return out


def _refine_once(mesh: Mesh) -> Mesh:
    quad_target = None
    work = mesh
    if mesh.etype is ElementType.TET10:
        work = _corner_skeleton(mesh, ElementType.TET4, 4)
        quad_target = ElementType.TET10
    elif mesh.etype in (ElementType.HEX20, ElementType.HEX27):
        quad_target = mesh.etype
        work = _corner_skeleton(mesh, ElementType.HEX8, 8)

    if work.etype is ElementType.HEX8:
        fine = _refine_hex8(work)
    elif work.etype is ElementType.TET4:
        fine = _refine_tet4(work)
    else:  # pragma: no cover - defensive
        raise ValueError(f"cannot refine {work.etype}")

    if quad_target is not None:
        fine = promote_mesh(fine, quad_target)
    return fine


def _corner_skeleton(mesh: Mesh, linear: ElementType, nc: int) -> Mesh:
    """Linear mesh over the corner nodes of a quadratic mesh."""
    corner_conn = mesh.conn[:, :nc]
    used = np.unique(corner_conn)
    remap = np.full(mesh.n_nodes, -1, dtype=INDEX_DTYPE)
    remap[used] = np.arange(used.size, dtype=INDEX_DTYPE)
    return Mesh(mesh.coords[used], remap[corner_conn], linear)


def _midside_ids(mesh: Mesh, tuples, width: int):
    """Unique mid-entity node ids/coords for edge/face/cell tuples."""
    keys = np.sort(
        np.stack([mesh.conn[:, list(t)] for t in tuples], axis=1).reshape(
            -1, width
        ),
        axis=1,
    )
    uniq, inverse = _unique_rows(keys)
    coords = mesh.coords[uniq].mean(axis=1)
    ids = inverse.reshape(mesh.n_elements, len(tuples))
    return coords, ids


def _refine_hex8(mesh: Mesh) -> Mesh:
    E = mesh.n_elements
    ecoords, eids = _midside_ids(mesh, HEX_EDGES, 2)
    fcoords, fids = _midside_ids(mesh, HEX_FACES, 4)
    ccoords = mesh.coords[mesh.conn].mean(axis=1)

    n0 = mesh.n_nodes
    n1 = n0 + ecoords.shape[0]
    n2 = n1 + fcoords.shape[0]
    coords = np.vstack([mesh.coords, ecoords, fcoords, ccoords])

    # node id lookup per (element, lattice position): build the 3x3x3
    # lattice of each hex: corners, edge mids, face mids, centre
    lat = np.empty((E, 3, 3, 3), dtype=INDEX_DTYPE)
    corner_pos = {  # HEX8 local order -> lattice (i, j, k)
        0: (0, 0, 0), 1: (2, 0, 0), 2: (2, 2, 0), 3: (0, 2, 0),
        4: (0, 0, 2), 5: (2, 0, 2), 6: (2, 2, 2), 7: (0, 2, 2),
    }
    for c, (i, j, k) in corner_pos.items():
        lat[:, i, j, k] = mesh.conn[:, c]
    for e, (a, b) in enumerate(HEX_EDGES):
        pa, pb = corner_pos[a], corner_pos[b]
        mid = tuple((x + y) // 2 for x, y in zip(pa, pb))
        lat[:, mid[0], mid[1], mid[2]] = n0 + eids[:, e]
    for f, face in enumerate(HEX_FACES):
        pos = np.array([corner_pos[c] for c in face])
        mid = tuple(int(round(v)) for v in pos.mean(axis=0))
        lat[:, mid[0], mid[1], mid[2]] = n1 + fids[:, f]
    lat[:, 1, 1, 1] = n2 + np.arange(E, dtype=INDEX_DTYPE)

    conn = np.empty((E, 8, 8), dtype=INDEX_DTYPE)
    child = 0
    for ck in (0, 1):
        for cj in (0, 1):
            for ci in (0, 1):
                for c, (i, j, k) in corner_pos.items():
                    conn[:, child, c] = lat[
                        :, ci + i // 2, cj + j // 2, ck + k // 2
                    ]
                child += 1
    return Mesh(coords, conn.reshape(8 * E, 8), ElementType.HEX8)


def _refine_tet4(mesh: Mesh) -> Mesh:
    """Red refinement: 4 corner children + 4 interior children around the
    shortest interior diagonal of the inner octahedron."""
    E = mesh.n_elements
    ecoords, eids = _midside_ids(mesh, TET_EDGES, 2)
    coords = np.vstack([mesh.coords, ecoords])
    m = mesh.n_nodes + eids  # (E, 6) midpoint ids, TET_EDGES order
    v = mesh.conn
    # edge order: (0,1) (1,2) (0,2) (0,3) (1,3) (2,3)
    m01, m12, m02, m03, m13, m23 = (m[:, i] for i in range(6))
    children = [
        # corner tets
        (v[:, 0], m01, m02, m03),
        (m01, v[:, 1], m12, m13),
        (m02, m12, v[:, 2], m23),
        (m03, m13, m23, v[:, 3]),
        # octahedron split along diagonal m01-m23
        (m01, m12, m02, m23),
        (m01, m12, m23, m13),
        (m01, m02, m03, m23),
        (m01, m23, m03, m13),
    ]
    conn = np.stack([np.stack(c, axis=1) for c in children], axis=1)
    conn = conn.reshape(8 * E, 4)
    # fix orientation: children from the diagonal split can be inverted
    c = coords[conn]
    vol = np.linalg.det(c[:, 1:4] - c[:, 0:1])
    flip = vol < 0
    conn[flip] = conn[flip][:, [0, 2, 1, 3]]
    return Mesh(coords, conn, ElementType.TET4)
