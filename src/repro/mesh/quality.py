"""Element quality metrics.

Used to validate generated/jittered/refined meshes (a bad element ruins
an SPMV benchmark silently) and by the adaptive examples to keep Rivara
cascades honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.mesh import Mesh
from repro.mesh.quadrature import quadrature_for
from repro.mesh.shape_functions import shape_functions_for

__all__ = ["QualityReport", "mesh_quality", "scaled_jacobians"]


@dataclass(frozen=True)
class QualityReport:
    """Summary of a mesh's element quality."""

    min_scaled_jacobian: float
    mean_scaled_jacobian: float
    max_aspect_ratio: float
    n_inverted: int

    @property
    def ok(self) -> bool:
        return self.n_inverted == 0 and self.min_scaled_jacobian > 1e-6


def scaled_jacobians(mesh: Mesh) -> np.ndarray:
    """Per-element scaled Jacobian: min over quadrature points of
    ``detJ`` normalized by the element's mean ``detJ`` (1.0 for affine
    elements, → 0 as an element degenerates, < 0 when inverted)."""
    sf = shape_functions_for(mesh.etype)
    quad = quadrature_for(mesh.etype)
    dN = sf.grad(quad.points)
    coords = mesh.coords[mesh.conn]
    J = np.einsum("qnd,enk->eqdk", dN, coords, optimize=True)
    detJ = np.linalg.det(J)
    mean = np.abs(detJ).mean(axis=1)
    mean = np.where(mean > 0, mean, 1.0)
    return detJ.min(axis=1) / mean


def _aspect_ratios(mesh: Mesh) -> np.ndarray:
    """Longest/shortest corner-edge length per element."""
    nc = mesh.etype.corner_count
    c = mesh.coords[mesh.conn[:, :nc]]
    if mesh.etype.is_hex:
        pairs = [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7),
                 (7, 4), (0, 4), (1, 5), (2, 6), (3, 7)]
    else:
        pairs = [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3)]
    lengths = np.stack(
        [np.linalg.norm(c[:, a] - c[:, b], axis=1) for a, b in pairs], axis=1
    )
    return lengths.max(axis=1) / lengths.min(axis=1)


def mesh_quality(mesh: Mesh) -> QualityReport:
    """Compute the quality report of ``mesh``.

    Unlike :func:`repro.fem.elemmat.jacobians` (which raises on inverted
    elements), this tolerates and counts them.
    """
    sj = scaled_jacobians(mesh)
    ar = _aspect_ratios(mesh)
    return QualityReport(
        min_scaled_jacobian=float(sj.min()),
        mean_scaled_jacobian=float(sj.mean()),
        max_aspect_ratio=float(ar.max()),
        n_inverted=int((sj <= 0).sum()),
    )
