"""Element-type registry.

Local node-ordering conventions (fixed across the whole library):

``HEX8``  — corners of the reference cube ``[-1, 1]^3``::

    0:(-1,-1,-1) 1:(+1,-1,-1) 2:(+1,+1,-1) 3:(-1,+1,-1)
    4:(-1,-1,+1) 5:(+1,-1,+1) 6:(+1,+1,+1) 7:(-1,+1,+1)

``HEX20`` — the 8 corners followed by 12 mid-edge nodes in the edge order
given by :data:`HEX_EDGES`.

``HEX27`` — the 20 nodes above, then 6 face centres in the face order of
:data:`HEX_FACES`, then the cell centre (node 26).

``TET4``  — vertices of the reference tetrahedron
``{x, y, z >= 0, x + y + z <= 1}``: ``0:(0,0,0) 1:(1,0,0) 2:(0,1,0)
3:(0,0,1)``.

``TET10`` — the 4 vertices, then 6 mid-edge nodes in the edge order of
:data:`TET_EDGES`.
"""

from __future__ import annotations

import enum


class ElementType(enum.Enum):
    """Finite-element cell types supported by the library."""

    HEX8 = "hex8"
    HEX20 = "hex20"
    HEX27 = "hex27"
    TET4 = "tet4"
    TET10 = "tet10"

    @property
    def n_nodes(self) -> int:
        return _N_NODES[self]

    @property
    def is_hex(self) -> bool:
        return self in (ElementType.HEX8, ElementType.HEX20, ElementType.HEX27)

    @property
    def is_tet(self) -> bool:
        return not self.is_hex

    @property
    def is_quadratic(self) -> bool:
        return self in (ElementType.HEX20, ElementType.HEX27, ElementType.TET10)

    @property
    def corner_count(self) -> int:
        """Number of geometric corner (vertex) nodes."""
        return 8 if self.is_hex else 4

    @property
    def default_quadrature_degree(self) -> int:
        """Polynomial degree the default stiffness quadrature integrates."""
        return _DEFAULT_QUAD_DEGREE[self]


_N_NODES = {
    ElementType.HEX8: 8,
    ElementType.HEX20: 20,
    ElementType.HEX27: 27,
    ElementType.TET4: 4,
    ElementType.TET10: 10,
}

_DEFAULT_QUAD_DEGREE = {
    ElementType.HEX8: 3,
    ElementType.HEX20: 5,
    ElementType.HEX27: 5,
    ElementType.TET4: 2,
    ElementType.TET10: 4,
}

#: Edges of the hex, as (corner, corner) pairs; HEX20/HEX27 mid-edge node
#: ``8 + i`` lies on ``HEX_EDGES[i]``.
HEX_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (1, 2), (2, 3), (3, 0),
    (4, 5), (5, 6), (6, 7), (7, 4),
    (0, 4), (1, 5), (2, 6), (3, 7),
)

#: Faces of the hex (corner quadruples, outward-ordered); HEX27 face node
#: ``20 + i`` is the centre of ``HEX_FACES[i]``.
HEX_FACES: tuple[tuple[int, int, int, int], ...] = (
    (0, 3, 2, 1),  # zeta = -1
    (4, 5, 6, 7),  # zeta = +1
    (0, 1, 5, 4),  # eta  = -1
    (1, 2, 6, 5),  # xi   = +1
    (2, 3, 7, 6),  # eta  = +1
    (3, 0, 4, 7),  # xi   = -1
)

#: Mid-edge node ``i`` of HEX20/HEX27 face ``f`` (for boundary extraction):
#: edge indices whose both corners lie on the face.
HEX_FACE_EDGES: tuple[tuple[int, ...], ...] = tuple(
    tuple(
        ei
        for ei, (a, b) in enumerate(HEX_EDGES)
        if a in face and b in face
    )
    for face in HEX_FACES
)

#: Edges of the tet; TET10 mid-edge node ``4 + i`` lies on ``TET_EDGES[i]``.
TET_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3),
)

#: Faces of the tet (corner triples).
TET_FACES: tuple[tuple[int, int, int], ...] = (
    (0, 2, 1), (0, 1, 3), (1, 2, 3), (0, 3, 2),
)

TET_FACE_EDGES: tuple[tuple[int, ...], ...] = tuple(
    tuple(
        ei
        for ei, (a, b) in enumerate(TET_EDGES)
        if a in face and b in face
    )
    for face in TET_FACES
)


def corner_faces(etype: ElementType) -> tuple[tuple[int, ...], ...]:
    """Corner-node tuples of each face of ``etype`` (used for boundary
    detection and the element dual graph)."""
    return HEX_FACES if etype.is_hex else TET_FACES


def face_nodes(etype: ElementType) -> tuple[tuple[int, ...], ...]:
    """All local nodes lying on each face (corners + higher-order nodes)."""
    if etype is ElementType.HEX8:
        return HEX_FACES
    if etype is ElementType.HEX20:
        return tuple(
            face + tuple(8 + e for e in HEX_FACE_EDGES[i])
            for i, face in enumerate(HEX_FACES)
        )
    if etype is ElementType.HEX27:
        return tuple(
            face + tuple(8 + e for e in HEX_FACE_EDGES[i]) + (20 + i,)
            for i, face in enumerate(HEX_FACES)
        )
    if etype is ElementType.TET4:
        return TET_FACES
    if etype is ElementType.TET10:
        return tuple(
            face + tuple(4 + e for e in TET_FACE_EDGES[i])
            for i, face in enumerate(TET_FACES)
        )
    raise ValueError(f"unsupported element type: {etype}")
