"""Global (serial) mesh container.

A :class:`Mesh` is the pre-partitioning description of the discretized
domain: node coordinates, element connectivity, element type.  The
partitioners in :mod:`repro.partition` turn it into per-rank local meshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.element import ElementType, corner_faces, face_nodes
from repro.util.arrays import as_f64, as_index, INDEX_DTYPE


@dataclass
class Mesh:
    """An unpartitioned finite-element mesh.

    Attributes
    ----------
    coords:
        ``(n_nodes, 3)`` node coordinates.
    conn:
        ``(n_elements, nodes_per_element)`` node indices, in the library's
        local node order (see :mod:`repro.mesh.element`).
    etype:
        The element type (single element type per mesh).
    """

    coords: np.ndarray
    conn: np.ndarray
    etype: ElementType
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.coords = as_f64(self.coords)
        self.conn = as_index(self.conn)
        if self.coords.ndim != 2 or self.coords.shape[1] != 3:
            raise ValueError("coords must have shape (n_nodes, 3)")
        if self.conn.ndim != 2 or self.conn.shape[1] != self.etype.n_nodes:
            raise ValueError(
                f"conn must have shape (n_elements, {self.etype.n_nodes})"
            )
        if self.conn.size and (
            self.conn.min() < 0 or self.conn.max() >= self.coords.shape[0]
        ):
            raise ValueError("connectivity references nonexistent nodes")

    @property
    def n_nodes(self) -> int:
        return self.coords.shape[0]

    @property
    def n_elements(self) -> int:
        return self.conn.shape[0]

    # ------------------------------------------------------------------
    # derived structures (cached)
    # ------------------------------------------------------------------

    def element_coords(self, elements: np.ndarray | None = None) -> np.ndarray:
        """``(E, n_nodes_per_elem, 3)`` coordinates of (a subset of) elements."""
        conn = self.conn if elements is None else self.conn[as_index(elements)]
        return self.coords[conn]

    def boundary_faces(self) -> np.ndarray:
        """``(F, 2)`` array of (element, local_face) pairs on the boundary.

        A face is on the boundary iff its corner-node set occurs in exactly
        one element.
        """
        if "boundary_faces" in self._cache:
            return self._cache["boundary_faces"]
        faces = corner_faces(self.etype)
        keys = []
        owners = []
        for fi, face in enumerate(faces):
            k = np.sort(self.conn[:, list(face)], axis=1)
            keys.append(k)
            owner = np.empty((self.n_elements, 2), dtype=INDEX_DTYPE)
            owner[:, 0] = np.arange(self.n_elements)
            owner[:, 1] = fi
            owners.append(owner)
        allkeys = np.vstack(keys)
        allowners = np.vstack(owners)
        view = np.ascontiguousarray(allkeys).view(
            [("", allkeys.dtype)] * allkeys.shape[1]
        ).reshape(-1)
        _, inverse, counts = np.unique(view, return_inverse=True, return_counts=True)
        boundary = allowners[counts[inverse] == 1]
        self._cache["boundary_faces"] = boundary
        return boundary

    def boundary_nodes(self) -> np.ndarray:
        """Sorted global indices of every node on the domain boundary
        (corner and higher-order nodes alike)."""
        if "boundary_nodes" in self._cache:
            return self._cache["boundary_nodes"]
        fnodes = face_nodes(self.etype)
        ids = [
            self.conn[e, list(fnodes[f])] for e, f in self.boundary_faces()
        ]
        out = (
            np.unique(np.concatenate(ids))
            if ids
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        self._cache["boundary_nodes"] = out
        return out

    def node_elements(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style node→element adjacency ``(offsets, elements)``."""
        if "node_elements" in self._cache:
            return self._cache["node_elements"]
        flat_nodes = self.conn.reshape(-1)
        flat_elems = np.repeat(
            np.arange(self.n_elements, dtype=INDEX_DTYPE), self.etype.n_nodes
        )
        order = np.argsort(flat_nodes, kind="stable")
        sorted_nodes = flat_nodes[order]
        sorted_elems = flat_elems[order]
        counts = np.bincount(sorted_nodes, minlength=self.n_nodes)
        offsets = np.zeros(self.n_nodes + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        self._cache["node_elements"] = (offsets, sorted_elems)
        return offsets, sorted_elems

    def dual_graph_edges(self) -> np.ndarray:
        """``(m, 2)`` element pairs sharing a face (the element dual graph).

        Used by the graph partitioner (METIS substitute).
        """
        if "dual_edges" in self._cache:
            return self._cache["dual_edges"]
        faces = corner_faces(self.etype)
        keys = np.vstack(
            [np.sort(self.conn[:, list(face)], axis=1) for face in faces]
        )
        elems = np.tile(np.arange(self.n_elements, dtype=INDEX_DTYPE), len(faces))
        view = np.ascontiguousarray(keys).view(
            [("", keys.dtype)] * keys.shape[1]
        ).reshape(-1)
        order = np.argsort(view, kind="stable")
        sv = view[order]
        se = elems[order]
        same = sv[1:] == sv[:-1]
        pairs = np.stack([se[:-1][same], se[1:][same]], axis=1)
        self._cache["dual_edges"] = pairs
        return pairs

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        return self.coords.min(axis=0), self.coords.max(axis=0)

    def element_centroids(self) -> np.ndarray:
        """``(E, 3)`` centroids of the corner nodes of each element."""
        nc = self.etype.corner_count
        return self.coords[self.conn[:, :nc]].mean(axis=1)
