"""Structured box hex meshes (Hex8 / Hex20 / Hex27).

Node numbering places the z index outermost so that z-slab partitioning
(the decomposition used in the paper's verification runs) yields contiguous
global node ranges per partition.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.element import ElementType
from repro.mesh.mesh import Mesh
from repro.mesh.shape_functions import reference_nodes
from repro.util.arrays import INDEX_DTYPE

__all__ = ["box_hex_mesh"]


def box_hex_mesh(
    nx: int,
    ny: int,
    nz: int,
    etype: ElementType = ElementType.HEX8,
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> Mesh:
    """Structured ``nx x ny x nz``-element hex mesh of a box.

    Parameters
    ----------
    nx, ny, nz:
        Number of elements per direction (all >= 1).
    etype:
        ``HEX8``, ``HEX20`` or ``HEX27``.
    lengths, origin:
        Physical box dimensions and lower corner.
    """
    if not etype.is_hex:
        raise ValueError(f"box_hex_mesh supports hex types only, got {etype}")
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one element per direction")

    if etype is ElementType.HEX8:
        return _linear_box(nx, ny, nz, lengths, origin)
    return _quadratic_box(nx, ny, nz, etype, lengths, origin)


def _linear_box(nx, ny, nz, lengths, origin) -> Mesh:
    px, py, pz = nx + 1, ny + 1, nz + 1
    xs = origin[0] + np.linspace(0.0, lengths[0], px)
    ys = origin[1] + np.linspace(0.0, lengths[1], py)
    zs = origin[2] + np.linspace(0.0, lengths[2], pz)
    Z, Y, X = np.meshgrid(zs, ys, xs, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)

    def nid(i, j, k):
        return (k * py + j) * px + i

    ex, ey, ez = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    # element order: z outermost to match slab partitioning
    ex, ey, ez = (
        a.transpose(2, 1, 0).ravel() for a in (ex, ey, ez)
    )
    offsets = ((reference_nodes(ElementType.HEX8) + 1) // 2).astype(INDEX_DTYPE)
    conn = np.stack(
        [nid(ex + ox, ey + oy, ez + oz) for ox, oy, oz in offsets], axis=1
    )
    return Mesh(coords, conn, ElementType.HEX8)


def _quadratic_box(nx, ny, nz, etype, lengths, origin) -> Mesh:
    # Fine vertex grid with 2*n + 1 points per direction; HEX27 keeps all
    # fine nodes, HEX20 keeps nodes with at most one odd index (corners and
    # mid-edge nodes).
    fx, fy, fz = 2 * nx + 1, 2 * ny + 1, 2 * nz + 1
    K, J, I = np.meshgrid(
        np.arange(fz), np.arange(fy), np.arange(fx), indexing="ij"
    )
    if etype is ElementType.HEX20:
        keep = ((I % 2) + (J % 2) + (K % 2)) <= 1
    else:
        keep = np.ones_like(I, dtype=bool)
    fine_to_compact = np.full(fx * fy * fz, -1, dtype=INDEX_DTYPE)
    flat_keep = keep.ravel()
    fine_to_compact[flat_keep] = np.arange(flat_keep.sum(), dtype=INDEX_DTYPE)

    xs = origin[0] + np.linspace(0.0, lengths[0], fx)
    ys = origin[1] + np.linspace(0.0, lengths[1], fy)
    zs = origin[2] + np.linspace(0.0, lengths[2], fz)
    coords = np.stack(
        [xs[I.ravel()], ys[J.ravel()], zs[K.ravel()]], axis=1
    )[flat_keep]

    def fid(i, j, k):
        return (k * fy + j) * fx + i

    ex, ey, ez = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ex, ey, ez = (a.transpose(2, 1, 0).ravel() for a in (ex, ey, ez))
    offsets = np.rint(reference_nodes(etype) + 1.0).astype(INDEX_DTYPE)
    conn = np.stack(
        [
            fine_to_compact[fid(2 * ex + ox, 2 * ey + oy, 2 * ez + oz)]
            for ox, oy, oz in offsets
        ],
        axis=1,
    )
    if (conn < 0).any():  # pragma: no cover - defensive
        raise AssertionError("HEX20 connectivity referenced a dropped node")
    return Mesh(coords, conn, etype)
