"""Adaptive local refinement of tetrahedral meshes (Rivara bisection).

The paper motivates HYMV with adaptivity: "applications with adaptive
multiresolution (AMR) or frequent enrichments ... where only a minor
subset of elements needs to be updated, while the global assembly is
completely avoided".  This module provides the mesh side of that story:

* :func:`refine_local` — longest-edge (Rivara) bisection of a marked
  element subset, with recursive conformity closure, on TET4 meshes.
* ancestry tracking — every element of the refined mesh knows which
  original element it descends from, and whether it is untouched, so
  stored element matrices can be *reused* for unchanged elements and
  recomputed only for the new ones (see ``HymvOperator(ke_cache=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.element import ElementType, TET_EDGES
from repro.mesh.mesh import Mesh
from repro.util.arrays import INDEX_DTYPE, as_index

__all__ = ["LocalRefinement", "refine_local"]


@dataclass
class LocalRefinement:
    """Result of a local refinement pass.

    Attributes
    ----------
    mesh:
        The refined (conforming) mesh.
    ancestor:
        ``(E_new,)`` index of each element's originating element in the
        *input* mesh.
    unchanged:
        ``(E_new,)`` bool — True where the element is bit-identical to
        its ancestor (same nodes, same coordinates), so any cached
        element matrix remains valid.
    """

    mesh: Mesh
    ancestor: np.ndarray
    unchanged: np.ndarray

    @property
    def n_new_elements(self) -> int:
        return int((~self.unchanged).sum())


def _longest_edge(coords: list, tet: list[int]) -> tuple[int, int]:
    """Longest edge of one tet as a local-vertex pair, ties broken by the
    sorted global ids for cross-element consistency."""
    best = None
    for a, b in TET_EDGES:
        ga, gb = tet[a], tet[b]
        diff = coords[ga] - coords[gb]
        d = float(diff @ diff)
        key = (-d, min(ga, gb), max(ga, gb))
        if best is None or key < best[0]:
            best = (key, (a, b))
    return best[1]


def refine_local(
    mesh: Mesh, marked: np.ndarray, max_passes: int = 100
) -> LocalRefinement:
    """Bisect the marked TET4 elements, closing for conformity.

    Every marked element is bisected at its longest edge; elements that
    end up with a hanging midpoint on one of their edges are bisected in
    turn (at *their* longest edge, per Rivara) until the mesh conforms.
    """
    if mesh.etype is not ElementType.TET4:
        raise ValueError("local refinement supports TET4 meshes")
    marked = np.unique(as_index(marked))
    if marked.size and (marked.min() < 0 or marked.max() >= mesh.n_elements):
        raise ValueError("marked element ids out of range")

    coords = [row for row in mesh.coords]
    elems: list[list[int]] = [list(row) for row in mesh.conn]
    ancestor = list(range(mesh.n_elements))
    touched = [False] * mesh.n_elements
    midpoint: dict[tuple[int, int], int] = {}

    def split_edge(ga: int, gb: int) -> int:
        key = (min(ga, gb), max(ga, gb))
        if key not in midpoint:
            coords.append(0.5 * (coords[ga] + coords[gb]))
            midpoint[key] = len(coords) - 1
        return midpoint[key]

    def bisect(ei: int) -> None:
        tet = elems[ei]
        la, lb = _longest_edge(coords, tet)
        ga, gb = tet[la], tet[lb]
        m = split_edge(ga, gb)
        child1 = list(tet)
        child1[lb] = m
        child2 = list(tet)
        child2[la] = m
        elems[ei] = child1
        touched[ei] = True
        elems.append(child2)
        ancestor.append(ancestor[ei])
        touched.append(True)

    queue = list(marked)
    for _ in range(max_passes):
        for ei in queue:
            bisect(ei)
        # conformity: any element whose edge has a midpoint must split
        queue = []
        for ei, tet in enumerate(elems):
            for a, b in TET_EDGES:
                key = (min(tet[a], tet[b]), max(tet[a], tet[b]))
                if key in midpoint:
                    queue.append(ei)
                    break
        if not queue:
            break
    else:  # pragma: no cover - Rivara terminates in practice
        raise RuntimeError("conformity closure did not terminate")

    new_coords = np.asarray(coords)
    new_conn = np.asarray(elems, dtype=INDEX_DTYPE)
    # restore positive orientation where bisection flipped a child
    c = new_coords[new_conn]
    vol = np.linalg.det(c[:, 1:4] - c[:, 0:1])
    flip = vol < 0
    new_conn[flip] = new_conn[flip][:, [0, 2, 1, 3]]
    out = Mesh(new_coords, new_conn, ElementType.TET4)
    return LocalRefinement(
        mesh=out,
        ancestor=np.asarray(ancestor, dtype=INDEX_DTYPE),
        unchanged=~np.asarray(touched, dtype=bool),
    )
