"""Numerical quadrature on the reference elements.

Hexes use tensor-product Gauss–Legendre rules; tetrahedra use the conical
(collapsed-coordinate) product rule built from Gauss–Legendre and
Gauss–Jacobi component rules, which is exact for total degree ``2n - 1``
with ``n^3`` points and has strictly positive weights.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np
from scipy.special import roots_jacobi, roots_legendre

from repro.mesh.element import ElementType

__all__ = ["QuadratureRule", "quadrature_for", "hex_rule", "tet_rule"]


@dataclass(frozen=True)
class QuadratureRule:
    """Points and weights on a reference element.

    ``weights`` sum to the reference-element measure (8 for the hex,
    1/6 for the unit tet).
    """

    points: np.ndarray  # (q, 3)
    weights: np.ndarray  # (q,)
    degree: int  # total polynomial degree integrated exactly

    @property
    def n_points(self) -> int:
        return self.points.shape[0]


def _gauss_01(n: int, alpha: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss rule on [0, 1] for weight ``(1 - t)^alpha``."""
    if alpha == 0:
        x, w = roots_legendre(n)
    else:
        x, w = roots_jacobi(n, alpha, 0.0)
    t = 0.5 * (x + 1.0)
    w01 = w / (2.0 ** (alpha + 1))
    return t, w01


@functools.lru_cache(maxsize=None)
def hex_rule(n: int) -> QuadratureRule:
    """``n^3``-point tensor Gauss rule on ``[-1, 1]^3`` (degree ``2n - 1``)."""
    x, w = roots_legendre(n)
    X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
    WX, WY, WZ = np.meshgrid(w, w, w, indexing="ij")
    pts = np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)
    wts = (WX * WY * WZ).ravel()
    return QuadratureRule(pts, wts, degree=2 * n - 1)


@functools.lru_cache(maxsize=None)
def tet_rule(n: int) -> QuadratureRule:
    """Conical product rule on the unit tet (degree ``2n - 1``).

    Uses the Duffy-style collapse ``x = a (1-b)(1-c), y = b (1-c), z = c``
    whose Jacobian ``(1-b)(1-c)^2`` is absorbed into Gauss–Jacobi weights.
    """
    ta, wa = _gauss_01(n, alpha=0)
    tb, wb = _gauss_01(n, alpha=1)
    tc, wc = _gauss_01(n, alpha=2)
    A, B, C = np.meshgrid(ta, tb, tc, indexing="ij")
    WA, WB, WC = np.meshgrid(wa, wb, wc, indexing="ij")
    z = C
    y = B * (1.0 - C)
    x = A * (1.0 - B) * (1.0 - C)
    pts = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
    wts = (WA * WB * WC).ravel()
    return QuadratureRule(pts, wts, degree=2 * n - 1)


def quadrature_for(etype: ElementType, degree: int | None = None) -> QuadratureRule:
    """Quadrature rule for ``etype`` exact to total ``degree``.

    With ``degree=None`` the element's default stiffness-matrix degree is
    used (2 points/direction for linear elements, 3 for quadratic).
    """
    if degree is None:
        degree = etype.default_quadrature_degree
    n = max(1, (degree + 2) // 2)  # 2n - 1 >= degree
    return hex_rule(n) if etype.is_hex else tet_rule(n)
