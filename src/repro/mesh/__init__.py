"""Mesh substrate: element definitions, shape functions, quadrature, meshes.

The paper evaluates HYMV on structured hex meshes (8-node linear, 20-node
and 27-node quadratic) and unstructured tetrahedral meshes (quadratic,
generated with Gmsh).  This package provides equivalents built from scratch:

* :mod:`repro.mesh.element` — element-type registry (Hex8/20/27, Tet4/10).
* :mod:`repro.mesh.shape_functions` — reference-element bases and gradients.
* :mod:`repro.mesh.quadrature` — Gauss tensor rules for hexes and conical
  (collapsed-coordinate Gauss–Jacobi) rules for tets.
* :mod:`repro.mesh.structured` — box hex meshes.
* :mod:`repro.mesh.unstructured` — Gmsh substitute: conforming tetrahedral
  meshes from Freudenthal hex subdivision with interior-node jitter, plus
  jittered quadratic hex meshes.
"""

from repro.mesh.adapt import refine_local
from repro.mesh.element import ElementType
from repro.mesh.mesh import Mesh
from repro.mesh.quadrature import QuadratureRule, quadrature_for
from repro.mesh.quality import mesh_quality
from repro.mesh.refine import refine_uniform
from repro.mesh.shape_functions import shape_functions_for
from repro.mesh.structured import box_hex_mesh
from repro.mesh.unstructured import box_tet_mesh, jittered_hex_mesh

__all__ = [
    "ElementType",
    "Mesh",
    "QuadratureRule",
    "quadrature_for",
    "shape_functions_for",
    "box_hex_mesh",
    "box_tet_mesh",
    "jittered_hex_mesh",
    "refine_uniform",
    "refine_local",
    "mesh_quality",
]
