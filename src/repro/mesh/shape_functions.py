"""Reference-element shape functions and gradients.

Bases implemented (see :mod:`repro.mesh.element` for node orderings):

* ``HEX8``  — trilinear tensor Lagrange on ``[-1, 1]^3``.
* ``HEX27`` — triquadratic tensor Lagrange on ``[-1, 1]^3``.
* ``HEX20`` — serendipity quadratic on ``[-1, 1]^3``.
* ``TET4``  — linear barycentric on the unit tetrahedron.
* ``TET10`` — quadratic barycentric on the unit tetrahedron.

All bases satisfy the Kronecker property ``N_i(x_j) = delta_ij``, partition
of unity and (through quadratic order where applicable) polynomial
reproduction; these are enforced by the test suite.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.mesh.element import ElementType, HEX_EDGES, HEX_FACES, TET_EDGES
from repro.util.arrays import as_f64

__all__ = ["ShapeFunctions", "shape_functions_for", "reference_nodes"]


class ShapeFunctions:
    """Shape-function basis of one element type.

    Attributes
    ----------
    etype:
        The element type.
    nodes:
        ``(n_nodes, 3)`` reference coordinates of the nodes.
    """

    def __init__(self, etype: ElementType, nodes: np.ndarray, eval_fn, grad_fn):
        self.etype = etype
        self.nodes = as_f64(nodes)
        self._eval = eval_fn
        self._grad = grad_fn

    @property
    def n_nodes(self) -> int:
        return self.nodes.shape[0]

    def eval(self, pts: np.ndarray) -> np.ndarray:
        """Evaluate all shape functions at points ``pts`` → ``(q, n)``."""
        pts = np.atleast_2d(as_f64(pts))
        return self._eval(pts)

    def grad(self, pts: np.ndarray) -> np.ndarray:
        """Reference gradients at ``pts`` → ``(q, n, 3)``."""
        pts = np.atleast_2d(as_f64(pts))
        return self._grad(pts)


# ----------------------------------------------------------------------------
# reference node coordinates
# ----------------------------------------------------------------------------

_HEX8_CORNERS = np.array(
    [
        [-1, -1, -1], [1, -1, -1], [1, 1, -1], [-1, 1, -1],
        [-1, -1, 1], [1, -1, 1], [1, 1, 1], [-1, 1, 1],
    ],
    dtype=np.float64,
)

_TET4_CORNERS = np.array(
    [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=np.float64
)


def reference_nodes(etype: ElementType) -> np.ndarray:
    """``(n_nodes, 3)`` reference coordinates in the library node order."""
    if etype is ElementType.HEX8:
        return _HEX8_CORNERS.copy()
    if etype in (ElementType.HEX20, ElementType.HEX27):
        edges = np.array(
            [(_HEX8_CORNERS[a] + _HEX8_CORNERS[b]) / 2 for a, b in HEX_EDGES]
        )
        nodes = np.vstack([_HEX8_CORNERS, edges])
        if etype is ElementType.HEX27:
            faces = np.array(
                [_HEX8_CORNERS[list(f)].mean(axis=0) for f in HEX_FACES]
            )
            nodes = np.vstack([nodes, faces, np.zeros((1, 3))])
        return nodes
    if etype is ElementType.TET4:
        return _TET4_CORNERS.copy()
    if etype is ElementType.TET10:
        edges = np.array(
            [(_TET4_CORNERS[a] + _TET4_CORNERS[b]) / 2 for a, b in TET_EDGES]
        )
        return np.vstack([_TET4_CORNERS, edges])
    raise ValueError(f"unsupported element type: {etype}")


# ----------------------------------------------------------------------------
# tensor-product Lagrange hexes (HEX8, HEX27)
# ----------------------------------------------------------------------------

def _lagrange_1d(order: int):
    """1-D Lagrange basis values/derivatives keyed by node coordinate."""
    if order == 1:
        def val(a, x):
            return 0.5 * (1.0 + a * x)

        def der(a, x):
            return np.full_like(x, 0.5 * a)

    elif order == 2:
        def val(a, x):
            if a == 0.0:
                return 1.0 - x * x
            return 0.5 * x * (x + a)

        def der(a, x):
            if a == 0.0:
                return -2.0 * x
            return x + 0.5 * a

    else:  # pragma: no cover - defensive
        raise ValueError(f"unsupported 1-D order {order}")
    return val, der


def _tensor_hex(etype: ElementType, order: int):
    nodes = reference_nodes(etype)
    val, der = _lagrange_1d(order)

    def eval_fn(pts: np.ndarray) -> np.ndarray:
        q = pts.shape[0]
        out = np.empty((q, nodes.shape[0]))
        for i, (a, b, c) in enumerate(nodes):
            out[:, i] = val(a, pts[:, 0]) * val(b, pts[:, 1]) * val(c, pts[:, 2])
        return out

    def grad_fn(pts: np.ndarray) -> np.ndarray:
        q = pts.shape[0]
        out = np.empty((q, nodes.shape[0], 3))
        for i, (a, b, c) in enumerate(nodes):
            fx, fy, fz = val(a, pts[:, 0]), val(b, pts[:, 1]), val(c, pts[:, 2])
            out[:, i, 0] = der(a, pts[:, 0]) * fy * fz
            out[:, i, 1] = fx * der(b, pts[:, 1]) * fz
            out[:, i, 2] = fx * fy * der(c, pts[:, 2])
        return out

    return ShapeFunctions(etype, nodes, eval_fn, grad_fn)


# ----------------------------------------------------------------------------
# serendipity HEX20
# ----------------------------------------------------------------------------

def _hex20():
    nodes = reference_nodes(ElementType.HEX20)

    def eval_fn(pts: np.ndarray) -> np.ndarray:
        x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
        out = np.empty((pts.shape[0], 20))
        for i, (a, b, c) in enumerate(nodes):
            if i < 8:  # corners
                out[:, i] = (
                    0.125
                    * (1 + a * x) * (1 + b * y) * (1 + c * z)
                    * (a * x + b * y + c * z - 2.0)
                )
            elif a == 0.0:  # edge parallel to xi
                out[:, i] = 0.25 * (1 - x * x) * (1 + b * y) * (1 + c * z)
            elif b == 0.0:  # edge parallel to eta
                out[:, i] = 0.25 * (1 + a * x) * (1 - y * y) * (1 + c * z)
            else:  # edge parallel to zeta
                out[:, i] = 0.25 * (1 + a * x) * (1 + b * y) * (1 - z * z)
        return out

    def grad_fn(pts: np.ndarray) -> np.ndarray:
        x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
        out = np.empty((pts.shape[0], 20, 3))
        for i, (a, b, c) in enumerate(nodes):
            if i < 8:
                fx, fy, fz = 1 + a * x, 1 + b * y, 1 + c * z
                s = a * x + b * y + c * z
                out[:, i, 0] = 0.125 * a * fy * fz * (2 * a * x + b * y + c * z - 1)
                out[:, i, 1] = 0.125 * b * fx * fz * (a * x + 2 * b * y + c * z - 1)
                out[:, i, 2] = 0.125 * c * fx * fy * (a * x + b * y + 2 * c * z - 1)
                del s
            elif a == 0.0:
                out[:, i, 0] = -0.5 * x * (1 + b * y) * (1 + c * z)
                out[:, i, 1] = 0.25 * (1 - x * x) * b * (1 + c * z)
                out[:, i, 2] = 0.25 * (1 - x * x) * (1 + b * y) * c
            elif b == 0.0:
                out[:, i, 0] = 0.25 * a * (1 - y * y) * (1 + c * z)
                out[:, i, 1] = -0.5 * y * (1 + a * x) * (1 + c * z)
                out[:, i, 2] = 0.25 * (1 + a * x) * (1 - y * y) * c
            else:
                out[:, i, 0] = 0.25 * a * (1 + b * y) * (1 - z * z)
                out[:, i, 1] = 0.25 * (1 + a * x) * b * (1 - z * z)
                out[:, i, 2] = -0.5 * z * (1 + a * x) * (1 + b * y)
        return out

    return ShapeFunctions(ElementType.HEX20, nodes, eval_fn, grad_fn)


# ----------------------------------------------------------------------------
# barycentric tets (TET4, TET10)
# ----------------------------------------------------------------------------

_GRAD_L = np.array(
    [[-1.0, -1.0, -1.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
)


def _bary(pts: np.ndarray) -> np.ndarray:
    """Barycentric coordinates ``(q, 4)`` of points in the unit tet."""
    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    return np.stack([1.0 - x - y - z, x, y, z], axis=1)


def _tet4():
    nodes = reference_nodes(ElementType.TET4)

    def eval_fn(pts):
        return _bary(pts)

    def grad_fn(pts):
        return np.broadcast_to(_GRAD_L[None, :, :], (pts.shape[0], 4, 3)).copy()

    return ShapeFunctions(ElementType.TET4, nodes, eval_fn, grad_fn)


def _tet10():
    nodes = reference_nodes(ElementType.TET10)

    def eval_fn(pts):
        L = _bary(pts)
        out = np.empty((pts.shape[0], 10))
        out[:, :4] = L * (2.0 * L - 1.0)
        for k, (i, j) in enumerate(TET_EDGES):
            out[:, 4 + k] = 4.0 * L[:, i] * L[:, j]
        return out

    def grad_fn(pts):
        L = _bary(pts)
        out = np.empty((pts.shape[0], 10, 3))
        for i in range(4):
            out[:, i, :] = (4.0 * L[:, i, None] - 1.0) * _GRAD_L[i]
        for k, (i, j) in enumerate(TET_EDGES):
            out[:, 4 + k, :] = 4.0 * (
                L[:, j, None] * _GRAD_L[i] + L[:, i, None] * _GRAD_L[j]
            )
        return out

    return ShapeFunctions(ElementType.TET10, nodes, eval_fn, grad_fn)


@functools.lru_cache(maxsize=None)
def shape_functions_for(etype: ElementType) -> ShapeFunctions:
    """Return the (cached) shape-function basis for ``etype``."""
    if etype is ElementType.HEX8:
        return _tensor_hex(etype, order=1)
    if etype is ElementType.HEX27:
        return _tensor_hex(etype, order=2)
    if etype is ElementType.HEX20:
        return _hex20()
    if etype is ElementType.TET4:
        return _tet4()
    if etype is ElementType.TET10:
        return _tet10()
    raise ValueError(f"unsupported element type: {etype}")
