"""Fig. 8: HYMV-GPU vs HYMV-CPU SPMV (elasticity, Hex20).

(a) single GPU node, increasing DoFs (0.8M → 25.1M): GPU SPMV ≈ 7.4x CPU,
    GPU setup slightly above CPU setup (element-matrix H2D transfer).
(b) weak scaling over 4–64 MPI processes at 6.3M DoFs/process with the
    three overlap schemes; GPU ≈ 7.5x CPU, GPU/CPU(O) degrades with scale.
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator
from repro.harness.driver import run_bench
from repro.mesh.element import ElementType
from repro.perfmodel.costs import (
    CaseGeometry,
    gpu_setup_time,
    gpu_spmv_time,
    method_setup_time,
    method_spmv_time,
)
from repro.perfmodel.machine import CoreRates, FronteraMachine
from repro.problems import elastic_bar_problem
from repro.util.tables import ResultTable

__all__ = ["run"]

# the GPU nodes' CPUs are modeled without the hybrid DRAM bonus (16-core
# nodes, 2 MPI x 14 OMP — see §V-A / §V-D)
GPU_NODE_MACHINE = FronteraMachine(rates=CoreRates(hybrid_emv_bonus=1.0))


def run(scale: str = "small") -> list[ResultTable]:
    op = ElasticityOperator()
    out = []

    # -- emulated tier: real GPU-simulated operator vs CPU operator ------
    em = ResultTable(
        "Fig 8 (emulated tier): HYMV CPU vs simulated-GPU, elasticity Hex20",
        ["dofs", "method", "setup_s", "spmv10_s"],
    )
    for nel in ((2, 3) if scale == "small" else (2, 3, 4)):
        spec = elastic_bar_problem(nel, 2, ElementType.HEX20)
        for method in ("hymv", "hymv_gpu"):
            b = run_bench(spec, method, n_spmv=10)
            em.add_row(spec.n_dofs, method, b.setup_time, b.spmv_time)
    em.add_note("GPU timings are modeled (RTX 5000 device model); math is real")
    out.append(em)

    # -- modeled tier (a): single node, increasing DoFs ------------------
    a = ResultTable(
        "Fig 8a (modeled tier): single GPU node, 2 MPI x 14 OMP, "
        "increasing DoFs",
        ["dofs_M", "cpu_setup_s", "gpu_setup_s", "cpu_spmv10_s",
         "gpu_spmv10_s", "speedup"],
    )
    for dofs_m in (0.8, 1.6, 3.2, 6.4, 12.7, 25.1):
        geo = CaseGeometry.from_granularity(
            ElementType.HEX20, op, dofs_m * 1e6 / 2.0, 2
        )
        su_c = method_setup_time(
            "hymv", geo, op, machine=GPU_NODE_MACHINE, threads=14
        )["total"]
        su_g = gpu_setup_time(geo, op, machine=GPU_NODE_MACHINE, threads=14)[
            "total"
        ]
        t_c = method_spmv_time(
            "hymv", geo, op, machine=GPU_NODE_MACHINE, threads=14, n_spmv=10
        )
        t_g = gpu_spmv_time(
            geo, op, machine=GPU_NODE_MACHINE, threads=14, n_spmv=10
        )
        a.add_row(dofs_m, su_c, su_g, t_c, t_g, t_c / t_g)
    a.add_note("paper: speedup ~7.4x at 25.1M DoFs, roughly constant")
    out.append(a)

    # -- modeled tier (b): weak scaling with the three overlap schemes ---
    b = ResultTable(
        "Fig 8b (modeled tier): weak scaling, 6.3M DoFs/process, "
        "4 MPI x 4 OMP per node",
        ["mpi_procs", "cpu_spmv10_s", "gpu_spmv10_s", "gpu_cpu_ovl_s",
         "gpu_gpu_ovl_s"],
    )
    for p in (4, 8, 16, 32, 64):
        geo = CaseGeometry.from_granularity(ElementType.HEX20, op, 6.3e6, p)
        t_c = method_spmv_time(
            "hymv", geo, op, machine=GPU_NODE_MACHINE, threads=4, n_spmv=10
        )
        ts = {
            s: gpu_spmv_time(
                geo, op, machine=GPU_NODE_MACHINE, threads=4, scheme=s,
                n_spmv=10,
            )
            for s in ("gpu", "gpu_cpu_overlap", "gpu_gpu_overlap")
        }
        b.add_row(p, t_c, ts["gpu"], ts["gpu_cpu_overlap"], ts["gpu_gpu_overlap"])
    b.add_note(
        "paper: GPU ~7.5x CPU; GPU vs GPU/GPU(O) similar at this scale; "
        "GPU/CPU(O) slower with increasing nodes (larger dependent fraction)"
    )
    out.append(b)
    return out
