"""Fig. 4: Poisson scalability on structured Hex8 meshes.

(a) weak scaling at 11.3K DoFs/rank, 56–28,672 cores (largest 331M DoFs);
    HYMV setup ≈ 10x faster than PETSc setup.
(b) strong scaling at 42M DoFs over 896–14,336 cores; HYMV setup ≈ 9x.
Matrix-free SPMV is much more expensive than both throughout.
"""

from __future__ import annotations

from repro.fem.operators import PoissonOperator
from repro.harness.series import emulated_scaling_table, modeled_scaling_table
from repro.mesh.element import ElementType
from repro.util.tables import ResultTable

__all__ = ["run"]

METHODS = ["hymv", "assembled", "matfree"]
PAPER_WEAK_CORES = [56, 112, 224, 448, 896, 1792, 3584, 7168, 14336, 28672]
PAPER_STRONG_CORES = [896, 1792, 3584, 7168, 14336]


def run(scale: str = "small") -> list[ResultTable]:
    op = PoissonOperator()
    out = []

    p_list = [1, 2, 4, 8] if scale == "small" else [1, 2, 4, 8, 16]
    g = 700.0 if scale == "small" else 2000.0
    weak_em = emulated_scaling_table(
        "Fig 4a (emulated tier): Poisson Hex8 weak scaling, "
        f"{g:.0f} DoFs/rank",
        "poisson", ElementType.HEX8, op, METHODS, "weak", p_list,
        dofs_per_rank=g,
    )
    weak_em.add_note(
        "scaled-down granularity; the paper runs 11.3K DoFs/rank"
    )
    out.append(weak_em)

    weak_mod = modeled_scaling_table(
        "Fig 4a (modeled tier, Frontera): Poisson Hex8 weak scaling, "
        "11.3K DoFs/rank",
        ElementType.HEX8, op, METHODS, "weak", PAPER_WEAK_CORES,
        dofs_per_rank=11.3e3,
        labels={"assembled": "petsc", "matfree": "matrix-free"},
    )
    h = weak_mod.rows[len(PAPER_WEAK_CORES) - 1][2:4]
    weak_mod.add_note(
        "paper: HYMV setup 10x faster than PETSc at the largest run; "
        "HYMV SPMV comparable to PETSc; matrix-free far above both"
    )
    out.append(weak_mod)

    strong_em = emulated_scaling_table(
        "Fig 4b (emulated tier): Poisson Hex8 strong scaling",
        "poisson", ElementType.HEX8, op, METHODS, "strong",
        p_list, total_dofs=4000.0 if scale == "small" else 12000.0,
    )
    out.append(strong_em)

    strong_mod = modeled_scaling_table(
        "Fig 4b (modeled tier, Frontera): Poisson Hex8 strong scaling, "
        "42M DoFs",
        ElementType.HEX8, op, METHODS, "strong", PAPER_STRONG_CORES,
        total_dofs=42e6,
        labels={"assembled": "petsc", "matfree": "matrix-free"},
    )
    strong_mod.add_note("paper: HYMV setup 9x faster than PETSc setup")
    out.append(strong_mod)
    return out
