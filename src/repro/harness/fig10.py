"""Fig. 10: roofline placement of the SPMV methods (single core,
20-node hex elasticity).

Reports the paper's Advisor measurements, the calibrated model placement,
and the rates *measured on this host* by a single-rank emulated run of
each method (documenting how far a NumPy substrate sits from the paper's
AVX-512 C++ kernels).  The SELL-C-sigma backend rides along as a fourth
column; the paper has no Advisor point for it, so its paper cells render
as em-dashes and its model placement sits on the attainable ceiling.
"""

from __future__ import annotations


from repro.fem.operators import ElasticityOperator
from repro.harness.driver import run_bench
from repro.mesh.element import ElementType
from repro.perfmodel.costs import (
    CaseGeometry,
    assembled_gpu_spmv_time,
    gpu_spmv_time,
    sellcs_gpu_spmv_time,
)
from repro.perfmodel.roofline import PAPER_ROOFLINE, render_ascii, roofline_points
from repro.problems import elastic_bar_problem
from repro.util.tables import ResultTable

__all__ = ["run"]


def run(scale: str = "small") -> list[ResultTable]:
    op = ElasticityOperator()
    nel = 4 if scale == "small" else 6

    # measured single-rank rates on this host
    spec = elastic_bar_problem(nel, 1, ElementType.HEX20)
    measured = {}
    for method in ("hymv", "assembled", "matfree", "sellcs"):
        b = run_bench(spec, method, n_spmv=5)
        measured[method] = b.gflops_rate

    n_nodes = spec.mesh.n_nodes
    n_elem = spec.mesh.n_elements
    pts = roofline_points(ElementType.HEX20, op, n_elem, n_nodes)

    table = ResultTable(
        "Fig 10: roofline — AI (FLOP/byte) and GFLOP/s per method, "
        "single core",
        ["method", "AI_model", "AI_paper", "GFLOPs_model", "GFLOPs_paper",
         "GFLOPs_measured_host", "bound"],
    )
    for p in pts:
        ai_p, gf_p = PAPER_ROOFLINE.get(p.method, ("—", "—"))
        table.add_row(
            p.method, p.arithmetic_intensity, ai_p, p.gflops, gf_p,
            measured[p.method], p.bound,
        )
    table.add_note(
        "paper orderings: assembled has the highest AI but lowest rate; "
        "matrix-free the highest rate (and by far the most work); HYMV "
        "in between with the lowest time-to-solution"
    )
    table.add_note(
        "host-measured rates are NumPy-substrate rates, reported for "
        "transparency; the model column is calibrated to the paper"
    )

    art = ResultTable("Fig 10: ASCII roofline (DRAM ceiling dotted)", ["plot"])
    for line in render_ascii(pts).splitlines():
        art.add_row(line)

    # modeled GPU SPMV per method (Algorithm 3 companion): the streamed
    # HYMV pipeline, the cuSPARSE CSR baseline and the SELL-C-sigma
    # streamed-chunk branch the autotuner scores — one representative
    # granularity, the paper's Fig. 8 setting
    geo = CaseGeometry.from_granularity(
        ElementType.HEX20, op, dofs_per_process=1.0e6, n_ranks=2
    )
    gpu_rows = (
        ("hymv_gpu", gpu_spmv_time(geo, op, n_streams=8)),
        ("assembled_gpu", assembled_gpu_spmv_time(geo, op)),
        ("sellcs_gpu", sellcs_gpu_spmv_time(geo, op, n_streams=8)),
        ("sellcs_gpu_C8", sellcs_gpu_spmv_time(geo, op, n_streams=8, C=8)),
    )
    gpu_table = ResultTable(
        "Modeled GPU SPMV per method (1M dofs/process, 2 ranks, Ns=8)",
        ["method", "t_spmv_ms"],
    )
    for name, t in gpu_rows:
        gpu_table.add_row(name, t * 1e3)
    gpu_table.add_note(
        "sellcs_gpu streams padded slices at warp efficiency min(1, C/32): "
        "C=8 chunks leave 3/4 of each warp idle, the cost the (C, sigma) "
        "autotuner knob trades against padding"
    )
    return [table, art, gpu_table]
