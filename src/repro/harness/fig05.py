"""Fig. 5: Elasticity scalability on structured Hex8 meshes, with the
setup cost breakdown (element-matrix compute vs assembly/copy overhead).

(a) weak scaling at 33.5K DoFs/rank (largest 918M DoFs): HYMV setup 5x
    faster; (b) strong scaling at 117M DoFs: 5x.
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator
from repro.harness.series import emulated_scaling_table, modeled_scaling_table
from repro.mesh.element import ElementType
from repro.util.tables import ResultTable

__all__ = ["run"]

METHODS = ["hymv", "assembled", "matfree"]
PAPER_WEAK_CORES = [56, 112, 224, 448, 896, 1792, 3584, 7168, 14336, 28672]
PAPER_STRONG_CORES = [896, 1792, 3584, 7168, 14336]


def run(scale: str = "small") -> list[ResultTable]:
    op = ElasticityOperator()
    out = []
    p_list = [1, 2, 4] if scale == "small" else [1, 2, 4, 8]
    g = 1500.0 if scale == "small" else 4000.0

    weak_em = emulated_scaling_table(
        f"Fig 5a (emulated tier): elasticity Hex8 weak scaling, {g:.0f} "
        "DoFs/rank, setup breakdown",
        "elastic", ElementType.HEX8, op, METHODS, "weak", p_list,
        dofs_per_rank=g, breakdown=True,
    )
    weak_em.add_note("paper granularity: 33.5K DoFs/rank")
    out.append(weak_em)

    weak_mod = modeled_scaling_table(
        "Fig 5a (modeled tier, Frontera): elasticity Hex8 weak scaling, "
        "33.5K DoFs/rank",
        ElementType.HEX8, op, METHODS, "weak", PAPER_WEAK_CORES,
        dofs_per_rank=33.5e3,
        labels={"assembled": "petsc", "matfree": "matrix-free"},
    )
    weak_mod.add_note(
        "paper: HYMV setup 5x faster than PETSc at 918M DoFs; "
        "emat_s vs overhead_s reproduces the bar split"
    )
    out.append(weak_mod)

    strong_mod = modeled_scaling_table(
        "Fig 5b (modeled tier, Frontera): elasticity Hex8 strong scaling, "
        "117M DoFs",
        ElementType.HEX8, op, METHODS, "strong", PAPER_STRONG_CORES,
        total_dofs=117e6,
        labels={"assembled": "petsc", "matfree": "matrix-free"},
    )
    strong_mod.add_note("paper: HYMV setup 5x faster than PETSc setup")
    out.append(strong_mod)
    return out
