"""Fig. 11: total solve time (setup → CG convergence) with
preconditioning.

(a) unstructured Hex8 elasticity, CG ± Jacobi, strong scaling — HYMV
    1.1–1.2x faster than PETSc, identical iteration counts per
    preconditioner.
(b) structured Hex20 elasticity weak scaling, Jacobi vs block Jacobi —
    block Jacobi cuts iterations; HYMV 1.1–1.3x faster.
(c) unstructured Hex27 elasticity, HYMV-GPU vs PETSc-GPU with Jacobi —
    HYMV 1.8x faster.
"""

from __future__ import annotations

from repro.harness.driver import run_solve
from repro.mesh.element import ElementType
from repro.problems import elastic_bar_problem
from repro.util.tables import ResultTable

__all__ = ["run"]


def _solve_rows(table, spec, cases, rtol):
    for method, precond in cases:
        out = run_solve(spec, method, precond=precond, rtol=rtol)
        table.add_row(
            spec.n_parts,
            spec.n_dofs,
            f"{method}/{precond}",
            out.iterations,
            out.setup_time,
            out.solve_time,
            out.total_time,
            out.err_inf,
        )


def _table(title):
    return ResultTable(
        title,
        ["ranks", "dofs", "method/pc", "iters", "setup_s", "solve_s",
         "total_s", "err_inf"],
    )


def run(scale: str = "small") -> list[ResultTable]:
    out = []
    rtol = 1e-3  # the paper's convergence tolerance
    small = scale == "small"

    # (a) unstructured Hex8, none vs Jacobi
    a = _table(
        "Fig 11a: total solve, unstructured Hex8 elasticity, CG ± Jacobi"
    )
    for p in ((2, 4) if small else (2, 4, 8)):
        spec = elastic_bar_problem(
            4 if small else 6, p, ElementType.HEX8, unstructured=True,
            jitter=0.2,
        )
        _solve_rows(
            a, spec,
            [("hymv", "none"), ("assembled", "none"),
             ("hymv", "jacobi"), ("assembled", "jacobi")],
            rtol,
        )
    a.add_note(
        "paper: identical iteration counts across methods (194 N / 152 J); "
        "HYMV 1.1x (N) and 1.2x (J) faster total time"
    )
    out.append(a)

    # (b) Hex20 weak scaling, Jacobi vs block Jacobi
    b = _table(
        "Fig 11b: total solve, Hex20 elasticity weak scaling, Jacobi vs "
        "block Jacobi"
    )
    for p in ((2, 3) if small else (2, 4, 8)):
        spec = elastic_bar_problem((3, 3, p * 2), p, ElementType.HEX20)
        _solve_rows(
            b, spec,
            [("hymv", "jacobi"), ("assembled", "jacobi"),
             ("hymv", "bjacobi"), ("assembled", "bjacobi")],
            rtol,
        )
    b.add_note(
        "paper: block Jacobi needs fewer iterations than Jacobi at every "
        "scale; HYMV 1.3x (J) / 1.1x (BJ) faster"
    )
    out.append(b)

    # (c) unstructured Hex27 on GPU
    c = _table(
        "Fig 11c: total solve, unstructured Hex27 elasticity, "
        "HYMV-GPU vs PETSc-GPU, Jacobi"
    )
    for p in ((2,) if small else (2, 4)):
        spec = elastic_bar_problem(
            3, p, ElementType.HEX27, unstructured=True, jitter=0.15
        )
        _solve_rows(
            c, spec,
            [("hymv_gpu", "jacobi"), ("assembled_gpu", "jacobi")],
            rtol,
        )
    c.add_note("paper: HYMV-GPU 1.8x faster total solve time on average")
    out.append(c)
    return out
