"""Memory-footprint comparison (paper §III: HYMV trades storage for
structured access — "storage (memory footprint) can still be high").

Measures the actual per-method operator storage on emulated runs and
models bytes/DoF at paper granularity for every element type, including
the partial-assembly extension that recovers most of the matrix-free
footprint while keeping stored (geometric) data.
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator, PoissonOperator
from repro.harness.driver import run_bench
from repro.mesh.element import ElementType
from repro.perfmodel.counters import estimate_nnz
from repro.problems import elastic_bar_problem, poisson_problem
from repro.util.tables import ResultTable

__all__ = ["run"]

_NODES_PER_ELEM = {
    ElementType.HEX8: 1.0,
    ElementType.HEX20: 4.0,
    ElementType.HEX27: 8.0,
    ElementType.TET4: 1.0 / 6.0,
    ElementType.TET10: 4.0 / 3.0,
}


def _modeled_bytes_per_dof(etype: ElementType, operator) -> dict[str, float]:
    ndpn = operator.ndpn
    nd = operator.element_dofs(etype)
    elems_per_dof = 1.0 / (_NODES_PER_ELEM[etype] * ndpn)
    nnz_per_dof = estimate_nnz(etype, ndpn, 1.0 / ndpn)
    from repro.mesh.quadrature import quadrature_for

    q = quadrature_for(etype).n_points
    return {
        "hymv": nd * nd * 8.0 * elems_per_dof,
        "assembled": nnz_per_dof * 12.0,  # values + int32 colind
        "partial": q * 9.0 * 8.0 * elems_per_dof,
        "matfree": 3.0 * 8.0 / ndpn,  # nodal coordinates only
    }


def run(scale: str = "small") -> list[ResultTable]:
    out = []

    mod = ResultTable(
        "Memory footprint (modeled): operator storage bytes per DoF",
        ["etype", "operator", "hymv", "assembled", "partial", "matfree",
         "hymv/assembled"],
    )
    for etype in ElementType:
        for op in (PoissonOperator(), ElasticityOperator()):
            b = _modeled_bytes_per_dof(etype, op)
            mod.add_row(
                etype.value, type(op).__name__.replace("Operator", ""),
                b["hymv"], b["assembled"], b["partial"], b["matfree"],
                b["hymv"] / b["assembled"],
            )
    mod.add_note(
        "paper §III: HYMV's storage exceeds the assembled matrix's "
        "(denser per-element blocks), matrix-free stores almost nothing; "
        "partial assembly (extension) sits near matrix-free"
    )
    out.append(mod)

    em = ResultTable(
        "Memory footprint (emulated): measured operator storage",
        ["case", "method", "stored_MB", "bytes_per_dof"],
    )
    cases = [
        ("poisson hex8", poisson_problem(10 if scale == "small" else 16, 2)),
        ("elastic hex20",
         elastic_bar_problem(4 if scale == "small" else 6, 2,
                             ElementType.HEX20)),
    ]
    for name, spec in cases:
        for method in ("hymv", "assembled", "partial", "matfree"):
            b = run_bench(spec, method, n_spmv=1)
            em.add_row(
                name, method, b.stored_bytes / 1e6,
                b.stored_bytes / spec.n_dofs,
            )
    out.append(em)
    return out
