"""Experiment harness: one module per paper table/figure.

:mod:`repro.harness.driver` provides the two SPMD rank programs every
experiment builds on — a setup + N×SPMV micro-benchmark (Figs. 4–9,
Table I) and a full CG solve (Fig. 11) — plus result aggregation.

``python -m repro.harness`` regenerates every table and figure; see
:mod:`repro.harness.registry`.
"""

from repro.harness.driver import (
    BenchResult,
    SolveOutcome,
    run_bench,
    run_solve,
)

__all__ = ["BenchResult", "SolveOutcome", "run_bench", "run_solve"]
