"""Shared builders for the scalability experiments (Figs. 4–7).

Each figure combines two tiers:

* **emulated** — the real distributed algorithms at laptop scale through
  :func:`repro.harness.driver.run_bench` (small rank counts, scaled-down
  granularity, measured compute + modeled communication), and
* **modeled** — the calibrated Frontera model at the paper's core counts
  (:mod:`repro.perfmodel.scaling`).
"""

from __future__ import annotations

from repro.fem.operators import Operator
from repro.harness.driver import run_bench
from repro.harness.meshes import box_dims_for_dofs
from repro.mesh.element import ElementType
from repro.perfmodel.scaling import strong_scaling_series, weak_scaling_series
from repro.problems import elastic_bar_problem, poisson_problem
from repro.util.tables import ResultTable

__all__ = [
    "emulated_scaling_table",
    "modeled_scaling_table",
    "make_spec",
]


def make_spec(
    problem: str,
    etype: ElementType,
    operator: Operator,
    total_dofs: float,
    n_parts: int,
    unstructured: bool = False,
):
    dims = box_dims_for_dofs(etype, operator, total_dofs)
    if problem == "poisson":
        return poisson_problem(dims, n_parts, etype)
    return elastic_bar_problem(
        dims, n_parts, etype, unstructured=unstructured
    )


def emulated_scaling_table(
    title: str,
    problem: str,
    etype: ElementType,
    operator: Operator,
    methods: list[str],
    mode: str,  # "weak" | "strong"
    p_list: list[int],
    dofs_per_rank: float | None = None,
    total_dofs: float | None = None,
    n_spmv: int = 10,
    unstructured: bool = False,
    breakdown: bool = False,
) -> ResultTable:
    cols = ["ranks", "dofs", "method", "setup_s", "spmv10_s"]
    if breakdown:
        cols += ["emat_s", "overhead_s"]
    table = ResultTable(title, cols)
    for p in p_list:
        dofs = dofs_per_rank * p if mode == "weak" else total_dofs
        spec = make_spec(
            problem, etype, operator, dofs, p, unstructured=unstructured
        )
        for method in methods:
            b = run_bench(spec, method, n_spmv=n_spmv)
            row = [p, spec.n_dofs, method, b.setup_time, b.spmv_time]
            if breakdown:
                emat = b.breakdown.get("setup.emat_compute", 0.0)
                over = b.setup_time - emat
                row += [emat, over]
            table.add_row(*row)
    return table


def modeled_scaling_table(
    title: str,
    etype: ElementType,
    operator: Operator,
    methods: list[str],
    mode: str,
    core_counts: list[int],
    dofs_per_rank: float | None = None,
    total_dofs: float | None = None,
    structured: bool = True,
    threads: int = 1,
    n_spmv: int = 10,
    labels: dict[str, str] | None = None,
) -> ResultTable:
    labels = labels or {}
    table = ResultTable(
        title,
        ["cores", "method", "setup_s", "spmv10_s", "emat_s", "overhead_s"],
    )
    if mode == "weak":
        series = weak_scaling_series(
            methods, core_counts, dofs_per_rank, etype, operator,
            structured=structured, threads=threads, n_spmv=n_spmv,
        )
    else:
        series = strong_scaling_series(
            methods, core_counts, total_dofs, etype, operator,
            structured=structured, threads=threads, n_spmv=n_spmv,
        )
    for m in methods:
        for pt in series[m]:
            table.add_row(
                pt.cores,
                labels.get(m, m),
                pt.setup_time,
                pt.spmv_time,
                pt.emat_time,
                pt.overhead_time,
            )
    return table
