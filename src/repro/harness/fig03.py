"""Fig. 3: overlap of data transfers and kernel execution across streams.

Reproduces the stream-count study of §V-D (eight streams were best for
the elasticity example) and renders the Fig. 3-style timeline.
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator
from repro.gpu.streams import StreamScheduler
from repro.mesh.element import ElementType
from repro.util.tables import ResultTable

__all__ = ["run"]


def _workload(n_dofs: float = 25.1e6):
    """Per-GPU batched-EMV workload of the §V-B elasticity example."""
    op = ElasticityOperator()
    nd = op.element_dofs(ElementType.HEX20)
    n_elements = n_dofs / 3.0 / 4.0 / 2.0  # per process (2 MPI ranks)
    return {
        "h2d_bytes": n_elements * nd * 8.0,
        "kernel_flops": 2.0 * n_elements * nd * nd,
        "kernel_bytes": n_elements * nd * nd * 8.0,
        "d2h_bytes": n_elements * nd * 8.0,
    }


def run(scale: str = "small") -> list[ResultTable]:
    work = _workload(25.1e6 if scale == "paper" else 1.0e6)

    sweep = ResultTable(
        "Fig 3 / §V-D: SPMV pipeline time vs number of streams "
        "(elasticity, Hex20)",
        ["streams", "makespan_ms", "overlap_efficiency", "speedup_vs_1"],
    )
    t1 = None
    for ns in (1, 2, 3, 4, 6, 8):
        sched = StreamScheduler(n_streams=ns)
        t = sched.run_batch(**work, n_chunks=max(ns, 8))
        if t1 is None:
            t1 = t
        sweep.add_row(ns, t * 1e3, sched.overlap_efficiency(), t1 / t)
    sweep.add_note("paper: 8 streams gave the best performance (§V-D)")

    sched = StreamScheduler(n_streams=8)
    sched.run_batch(**work)
    timeline = ResultTable(
        "Fig 3: timeline with 8 streams (H=H2D, K=kernel, D=D2H)",
        ["timeline"],
    )
    for line in sched.render_ascii(64).splitlines():
        timeline.add_row(line)
    return [sweep, timeline]
