"""Registry of every table/figure reproduction."""

from __future__ import annotations

from typing import Callable

from repro.harness import (
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    memory,
    table1,
    verification,
)
from repro.util.tables import ResultTable

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[str], list[ResultTable]]] = {
    "fig3": fig03.run,
    "fig4": fig04.run,
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig7": fig07.run,
    "fig8": fig08.run,
    "fig9": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table1": table1.run,
    "memory": memory.run,
    "verification": verification.run,
}


def run_experiment(name: str, scale: str = "small") -> list[ResultTable]:
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](scale)


def run_all(scale: str = "small") -> dict[str, list[ResultTable]]:
    return {name: fn(scale) for name, fn in EXPERIMENTS.items()}
