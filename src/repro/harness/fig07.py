"""Fig. 7: Strong scaling on an unstructured Tet10 Poisson problem
(8.5M DoFs, 6.3M elements, 1–32 Frontera nodes).

Average HYMV advantage: 11x setup, 3.6x SPMV — the headline unstructured
numbers of the paper.
"""

from __future__ import annotations

from repro.fem.operators import PoissonOperator
from repro.harness.series import emulated_scaling_table, modeled_scaling_table
from repro.mesh.element import ElementType
from repro.util.tables import ResultTable

__all__ = ["run"]

PAPER_NODES = [1, 2, 4, 8, 16, 32]


def run(scale: str = "small") -> list[ResultTable]:
    op = PoissonOperator()
    out = []
    p_list = [1, 2, 4] if scale == "small" else [1, 2, 4, 8]
    em = emulated_scaling_table(
        "Fig 7 (emulated tier): unstructured Tet10 Poisson strong scaling, "
        "setup breakdown",
        "poisson", ElementType.TET10, op, ["hymv", "assembled"], "strong",
        p_list, total_dofs=3000.0 if scale == "small" else 9000.0,
        breakdown=True,
    )
    em.add_note("Gmsh/METIS substitute: jittered Kuhn tet mesh + graph partitioner")
    out.append(em)

    mod = modeled_scaling_table(
        "Fig 7 (modeled tier, Frontera): unstructured Tet10 Poisson strong "
        "scaling, 8.5M DoFs, 1-32 nodes",
        ElementType.TET10, op, ["hymv", "assembled"], "strong",
        [56 * n for n in PAPER_NODES], total_dofs=8.5e6, structured=False,
        labels={"assembled": "petsc"},
    )
    # attach the headline ratios
    setup = {(r[1], r[0]): r[2] for r in mod.rows}
    spmv = {(r[1], r[0]): r[3] for r in mod.rows}
    su = [setup[("petsc", 56 * n)] / setup[("hymv", 56 * n)] for n in PAPER_NODES]
    sp = [spmv[("petsc", 56 * n)] / spmv[("hymv", 56 * n)] for n in PAPER_NODES]
    mod.add_note(
        f"avg setup ratio = {sum(su)/len(su):.1f}x (paper: 11x); "
        f"avg SPMV ratio = {sum(sp)/len(sp):.1f}x (paper: 3.6x)"
    )
    out.append(mod)
    return out
