"""Table I: flops, time and flop rate of ten SPMV per method.

The paper's protocol: 20-node hex elasticity, granularity 0.1M and 0.2M
DoFs per MPI process, on one and four Frontera nodes (56 ranks/node).
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator
from repro.harness.driver import run_bench
from repro.mesh.element import ElementType
from repro.perfmodel.costs import (
    CaseGeometry,
    gpu_spmv_time,
    method_spmv_time,
)
from repro.perfmodel.counters import spmv_counters
from repro.problems import elastic_bar_problem
from repro.util.tables import ResultTable

__all__ = ["run"]

#: The paper's Table I (GFLOP, seconds, GFLOP/s for ten SPMV).
PAPER_TABLE1 = {
    # (granularity_M, nodes): {method: (gflop, time, rate)}
    (0.1, 1): {
        "assembled": (19.2, 0.80, 24.1),
        "hymv": (32.3, 0.72, 44.7),
        "hymv_gpu": (32.3, 0.31, 103.7),
        "matfree": (2264.0, 7.46, 303.4),
    },
    (0.1, 4): {
        "assembled": (76.8, 0.78, 98.7),
        "hymv": (129.0, 0.58, 221.3),
        "hymv_gpu": (129.0, 0.36, 361.3),
        "matfree": (9056.1, 7.47, 1211.9),
    },
    (0.2, 1): {
        "assembled": (38.2, 1.55, 24.7),
        "hymv": (64.5, 1.17, 55.0),
        "hymv_gpu": (64.5, 0.61, 106.2),
        "matfree": (4528.0, 14.96, 302.7),
    },
    (0.2, 4): {
        "assembled": (152.8, 1.55, 98.4),
        "hymv": (258.0, 1.21, 213.7),
        "hymv_gpu": (258.0, 0.65, 396.7),
        "matfree": (18112.1, 15.05, 1203.6),
    },
}

METHODS = ["assembled", "hymv", "hymv_gpu", "matfree"]


def run(scale: str = "small") -> list[ResultTable]:
    op = ElasticityOperator()
    out = []

    # -- modeled tier at the paper's exact configuration -----------------
    mod = ResultTable(
        "Table I (modeled tier): ten SPMV, Hex20 elasticity, Frontera",
        ["granularity_MDoF", "nodes", "method", "GFLOP_model",
         "GFLOP_paper", "time_model_s", "time_paper_s", "rate_model_GFs",
         "rate_paper_GFs"],
    )
    for (gran, nodes), paper in PAPER_TABLE1.items():
        p = nodes * 56
        geo = CaseGeometry.from_granularity(
            ElementType.HEX20, op, gran * 1e6, p
        )
        for m in METHODS:
            base = "hymv" if m == "hymv_gpu" else m
            c = spmv_counters(base, ElementType.HEX20, op, geo.n_elements,
                              geo.n_nodes)
            gflop = 10.0 * c.flops * p / 1e9
            if m == "hymv_gpu":
                # 56 MPI ranks share the node's 4 GPUs: each device
                # serializes 14 processes' batches
                t = gpu_spmv_time(geo, op, threads=1, n_spmv=10) * (56 / 4)
            else:
                t = method_spmv_time(m, geo, op, n_spmv=10)
            rate = gflop / t
            pg, pt, pr = paper[m]
            mod.add_row(gran, nodes, m, gflop, pg, t, pt, rate, pr)
    mod.add_note(
        "paper's reading: assembled has the fewest flops but the lowest "
        "rate (irregular access); matrix-free the highest rate but ~70x "
        "the work; HYMV the lowest time-to-solution"
    )
    out.append(mod)

    # -- emulated tier: measured on this host at reduced granularity -----
    em = ResultTable(
        "Table I (emulated tier): measured ten-SPMV rates on this host",
        ["dofs", "ranks", "method", "GFLOP", "time_s", "rate_GFs"],
    )
    nel = 4 if scale == "small" else 6
    for p in (1, 2):
        spec = elastic_bar_problem(nel, p, ElementType.HEX20)
        for m in ("assembled", "hymv", "matfree"):
            b = run_bench(spec, m, n_spmv=10)
            em.add_row(
                spec.n_dofs, p, m, b.flops_spmv / 1e9, b.spmv_time,
                b.gflops_rate,
            )
    em.add_note("NumPy substrate; rate *ordering* is the reproduction target")
    out.append(em)
    return out
