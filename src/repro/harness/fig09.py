"""Fig. 9: HYMV-GPU vs PETSc-GPU (cuSPARSE) on unstructured Hex27
elasticity meshes.

(a) weak scaling at ~488K DoFs/process: HYMV-GPU 3.0x faster setup,
    1.5x faster SPMV; (b) strong scaling at 15.8M DoFs: 2.9x / 1.4x.
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator
from repro.harness.driver import run_bench
from repro.mesh.element import ElementType
from repro.perfmodel.costs import (
    CaseGeometry,
    assembled_gpu_setup_time,
    assembled_gpu_spmv_time,
    gpu_setup_time,
    gpu_spmv_time,
)
from repro.problems import elastic_bar_problem
from repro.util.tables import ResultTable

__all__ = ["run"]


def _modeled(title, configs) -> ResultTable:
    op = ElasticityOperator()
    t = ResultTable(
        title,
        ["mpi_procs", "hymv_setup_s", "petsc_setup_s", "hymv_spmv10_s",
         "petsc_spmv10_s"],
    )
    for p, dofs_per_proc in configs:
        geo = CaseGeometry.from_granularity(
            ElementType.HEX27, op, dofs_per_proc, p, structured=False
        )
        t.add_row(
            p,
            gpu_setup_time(geo, op, threads=4)["total"],
            assembled_gpu_setup_time(geo, op),
            gpu_spmv_time(geo, op, threads=4, scheme="gpu_gpu_overlap",
                          n_spmv=10),
            assembled_gpu_spmv_time(geo, op, n_spmv=10),
        )
    return t


def run(scale: str = "small") -> list[ResultTable]:
    out = []

    em = ResultTable(
        "Fig 9 (emulated tier): HYMV-GPU vs PETSc-GPU, jittered Hex27 "
        "elasticity",
        ["dofs", "method", "setup_s", "spmv10_s"],
    )
    nel = 2 if scale == "small" else 3
    spec = elastic_bar_problem(
        nel, 3, ElementType.HEX27, unstructured=True, jitter=0.15
    )
    for method in ("hymv_gpu", "assembled_gpu"):
        b = run_bench(spec, method, n_spmv=10)
        em.add_row(spec.n_dofs, method, b.setup_time, b.spmv_time)
    out.append(em)

    weak = _modeled(
        "Fig 9a (modeled tier): weak scaling, ~488K DoFs/process, "
        "unstructured Hex27",
        [(p, 488e3) for p in (4, 8, 16, 32, 64)],
    )
    weak.add_note("paper: HYMV-GPU 3.0x faster setup, 1.5x faster SPMV on average")
    out.append(weak)

    strong = _modeled(
        "Fig 9b (modeled tier): strong scaling, 15.8M DoFs, unstructured "
        "Hex27",
        [(p, 15.8e6 / p) for p in (8, 16, 32, 64, 88)],
    )
    strong.add_note("paper: HYMV-GPU 2.9x faster setup, 1.4x faster SPMV on average")
    out.append(strong)
    return out
