"""Regenerate the paper's tables and figures, or run the CI smoke bench.

Usage::

    python -m repro.harness                 # everything, small scale
    python -m repro.harness fig7 fig10      # a subset
    python -m repro.harness --scale paper   # paper-scale modeled series
    python -m repro.harness --out results/  # also write one .txt per exp
    python -m repro.harness bench           # smoke bench -> BENCH_smoke.json
    python -m repro.harness bench --repeats 3 --out BENCH_smoke.json
    python -m repro.harness chaos           # fault matrix -> CHAOS_report.json
    python -m repro.harness chaos --smoke   # CI-sized chaos run
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.registry import EXPERIMENTS, run_experiment
from repro.util.tables import render_many


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.obs.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.faults.chaos import main as chaos_main

        return chaos_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's tables and figures",
    )
    ap.add_argument(
        "experiments", nargs="*", default=[],
        help=f"subset to run (default: all of {sorted(EXPERIMENTS)})",
    )
    ap.add_argument("--scale", choices=["small", "paper"], default="small")
    ap.add_argument("--out", type=pathlib.Path, default=None)
    args = ap.parse_args(argv)

    names = args.experiments or sorted(EXPERIMENTS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        tables = run_experiment(name, args.scale)
        text = render_many(tables)
        print(f"\n{'=' * 72}\n# {name}\n{'=' * 72}")
        print(text)
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
