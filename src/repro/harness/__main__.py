"""Entry point: figures/tables, bench suites, chaos matrix, serve harness.

The usage examples below are generated from ``_EXAMPLES`` (one source of
truth — the module docstring, ``--help`` epilog and README stay in sync
by construction).

Usage::

    python -m repro.harness                   # all experiments, small scale
    python -m repro.harness fig7 fig10        # a subset of experiments
    python -m repro.harness --scale paper     # paper-scale modeled series
    python -m repro.harness --out results/    # also write one .txt per exp
    python -m repro.harness bench             # smoke bench -> BENCH_smoke.json
    python -m repro.harness bench --suite kernels  # SPMV hot-path microbench
    python -m repro.harness chaos --smoke     # fault matrix -> CHAOS_report.json
    python -m repro.harness serve --smoke     # load harness -> SERVE_report.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

# subcommand name -> (module with main(), one-line description)
_COMMANDS = {
    "bench": ("repro.obs.bench", "bench suites -> BENCH_<suite>.json "
              "(--suite smoke|kernels)"),
    "chaos": ("repro.faults.chaos", "fault-injection matrix -> "
              "CHAOS_report.json (--smoke for CI size)"),
    "serve": ("repro.serve.loadgen", "batched-solver load harness -> "
              "SERVE_report.json (--smoke for CI size)"),
    "shard": ("repro.serve.shardload", "sharded-tier Zipf load harness -> "
              "SHARD_report.json (--smoke for CI size)"),
    "adapt": ("repro.adapt.harness", "incremental-update harness -> "
              "ADAPT_report.json (--smoke for CI size)"),
    "tune": ("repro.tune.harness", "autotuner search over system knobs -> "
             "TUNE_report.json + tuned_config.json (--smoke for CI size)"),
}

# (example invocation, what it does) — the single source of the usage block
_EXAMPLES = (
    ("python -m repro.harness", "all experiments, small scale"),
    ("python -m repro.harness fig7 fig10", "a subset of experiments"),
    ("python -m repro.harness --scale paper", "paper-scale modeled series"),
    ("python -m repro.harness --out results/", "also write one .txt per exp"),
    ("python -m repro.harness bench", "smoke bench -> BENCH_smoke.json"),
    ("python -m repro.harness bench --suite kernels",
     "SPMV hot-path microbench"),
    ("python -m repro.harness chaos --smoke",
     "fault matrix -> CHAOS_report.json"),
    ("python -m repro.harness serve --smoke",
     "load harness -> SERVE_report.json"),
    ("python -m repro.harness shard --smoke",
     "sharded tier -> SHARD_report.json"),
    ("python -m repro.harness adapt --smoke",
     "delta updates -> ADAPT_report.json"),
    ("python -m repro.harness tune --smoke",
     "autotuner -> TUNE_report.json + tuned_config.json"),
)


def _usage_block() -> str:
    width = max(len(cmd) for cmd, _ in _EXAMPLES)
    return "\n".join(f"    {cmd:<{width}}  # {why}" for cmd, why in _EXAMPLES)


def _epilog() -> str:
    sub = "\n".join(
        f"  {name:<7} {desc}" for name, (_, desc) in sorted(_COMMANDS.items())
    )
    return (
        f"subcommands (each takes its own --help):\n{sub}\n\n"
        f"examples:\n{_usage_block()}"
    )


# keep the module docstring's usage block in lockstep with _EXAMPLES
__doc__ = (
    __doc__.split("Usage::")[0] + "Usage::\n\n" + _usage_block() + "\n"
)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _COMMANDS:
        import importlib

        module = importlib.import_module(_COMMANDS[argv[0]][0])
        return module.main(argv[1:])

    from repro.harness.registry import EXPERIMENTS, run_experiment
    from repro.util.tables import render_many

    ap = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the paper's tables and figures",
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument(
        "experiments", nargs="*", default=[],
        help=f"subset to run (default: all of {sorted(EXPERIMENTS)})",
    )
    ap.add_argument("--scale", choices=["small", "paper"], default="small")
    ap.add_argument("--out", type=pathlib.Path, default=None)
    args = ap.parse_args(argv)

    names = args.experiments or sorted(EXPERIMENTS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        tables = run_experiment(name, args.scale)
        text = render_many(tables)
        print(f"\n{'=' * 72}\n# {name}\n{'=' * 72}")
        print(text)
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
