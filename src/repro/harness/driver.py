"""SPMD rank programs shared by all experiments.

Two entry points:

* :func:`run_bench` — the paper's micro-benchmark protocol: time the
  matrix setup, then ten SPMV operations (every scalability figure reports
  exactly these two quantities).
* :func:`run_solve` — full CG solve with Dirichlet conditions and optional
  preconditioning (Fig. 11's total-solve-time protocol), with error
  against the analytic solution.

Methods are selected by name: ``"hymv"``, ``"assembled"`` (PETSc
substitute), ``"matfree"``, plus GPU variants registered by
:mod:`repro.gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.baselines.assembled import AssembledOperator
from repro.baselines.matfree import MatrixFreeOperator
from repro.baselines.partial import PartialAssemblyOperator
from repro.baselines.sellcs import SellCSOperator
from repro.core.hymv import HymvOperator
from repro.core.maps import build_node_maps
from repro.core.rhs import assemble_rhs, local_node_coords
from repro.core.scatter import build_comm_maps
from repro.faults.plan import FaultPlan
from repro.obs.instrumentation import merge_snapshots
from repro.problems import ProblemSpec
from repro.simmpi.engine import run_spmd
from repro.simmpi.network import NetworkModel
from repro.solvers.cg import ResilienceConfig, cg
from repro.solvers.constrained import dirichlet_system
from repro.solvers.preconditioners import (
    BlockJacobiPreconditioner,
    JacobiPreconditioner,
)
from repro.util.arrays import INDEX_DTYPE

__all__ = [
    "BenchResult",
    "SolveOutcome",
    "run_bench",
    "run_solve",
    "OPERATOR_FACTORIES",
]

# method name -> factory(comm, lmesh, operator, ranges, **options)
OPERATOR_FACTORIES = {
    "hymv": HymvOperator,
    "assembled": AssembledOperator,
    "matfree": MatrixFreeOperator,
    "partial": PartialAssemblyOperator,
    "sellcs": SellCSOperator,
}


def _register_gpu_factories() -> None:
    # late import: repro.gpu depends on repro.core
    from repro.gpu.hymv_gpu import AssembledGpuOperator, HymvGpuOperator

    OPERATOR_FACTORIES.setdefault("hymv_gpu", HymvGpuOperator)
    OPERATOR_FACTORIES.setdefault("assembled_gpu", AssembledGpuOperator)


_register_gpu_factories()


def _make_operator(kind, comm, lmesh, operator, ranges, options):
    try:
        factory = OPERATOR_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown method {kind!r}; known: {sorted(OPERATOR_FACTORIES)}"
        ) from None
    return factory(comm, lmesh, operator, ranges=ranges, **options)


# ----------------------------------------------------------------------------
# bench protocol: setup + N SPMV
# ----------------------------------------------------------------------------

@dataclass
class BenchResult:
    """Aggregated (max over ranks) timings of one bench run."""

    method: str
    n_parts: int
    n_dofs: int
    setup_time: float
    spmv_time: float  # time of `n_spmv` products
    n_spmv: int
    breakdown: dict[str, float] = field(default_factory=dict)
    flops_spmv: float = 0.0  # global flops of `n_spmv` products
    stored_bytes: int = 0
    #: merged per-rank observability snapshot (phases incl. wall time,
    #: counters) — see :func:`repro.obs.instrumentation.merge_snapshots`
    obs: dict = field(default_factory=dict)

    @property
    def gflops_rate(self) -> float:
        return self.flops_spmv / self.spmv_time / 1e9 if self.spmv_time else 0.0


def _bench_program(comm, lmesh, kind, n_spmv, overlap, options, seed):
    ranges = np.asarray(
        comm.allgather((lmesh.n_begin, lmesh.n_end)), dtype=INDEX_DTYPE
    )
    t0 = comm.vtime
    A = _make_operator(kind, comm, lmesh, OPTIONS_OPERATOR[0], ranges, options)
    setup_time = comm.vtime - t0

    ndpn = A.ndpn
    n_owned_dofs = (lmesh.n_end - lmesh.n_begin) * ndpn
    rng = np.random.default_rng(seed + comm.rank)
    x = rng.standard_normal(n_owned_dofs)

    t1 = comm.vtime
    if kind in ("hymv", "matfree"):
        u, v = A.new_array(), A.new_array()
        u.set_owned(x)
        for _ in range(n_spmv):
            A.spmv(u, v, overlap=overlap)
        y = v.owned_flat.copy()
    else:
        y = x
        for _ in range(n_spmv):
            y = A.apply_owned(x)
    spmv_time = comm.vtime - t1

    flops = A.flops_per_spmv() * n_spmv
    stored = A.stored_bytes() if hasattr(A, "stored_bytes") else 0
    return {
        "setup": setup_time,
        "spmv": spmv_time,
        "timing": comm.timing.as_dict(),
        "obs": comm.obs.snapshot(),
        "flops": flops,
        "stored": stored,
        "checksum": float(np.sum(y)),
    }


# the operator object is large and identical across ranks; pass via a module
# slot instead of per-rank args to avoid 256 copies in rank_args
OPTIONS_OPERATOR = [None]


def run_bench(
    spec: ProblemSpec,
    method: str,
    n_spmv: int = 10,
    overlap: bool = True,
    network: NetworkModel | None = None,
    compute_scale: float = 1.0,
    seed: int = 1234,
    faults: FaultPlan | None = None,
    **options,
) -> BenchResult:
    """Run the setup + ``n_spmv`` protocol for one method on ``spec``."""
    p = spec.n_parts
    OPTIONS_OPERATOR[0] = spec.operator
    rank_args = [
        (spec.partition.local(r), method, n_spmv, overlap, options, seed)
        for r in range(p)
    ]
    results, sim = run_spmd(
        p,
        _bench_program,
        rank_args=rank_args,
        network=network,
        compute_scale=compute_scale,
        faults=faults,
    )
    breakdown: dict[str, float] = {}
    for res in results:
        for k, v in res["timing"].items():
            breakdown[k] = max(breakdown.get(k, 0.0), v)
    return BenchResult(
        method=method,
        n_parts=p,
        n_dofs=spec.n_dofs,
        setup_time=max(r["setup"] for r in results),
        spmv_time=max(r["spmv"] for r in results),
        n_spmv=n_spmv,
        breakdown=breakdown,
        flops_spmv=sum(r["flops"] for r in results),
        stored_bytes=sum(r["stored"] for r in results),
        obs=merge_snapshots([r["obs"] for r in results]),
    )


# ----------------------------------------------------------------------------
# solve protocol: setup + CG to convergence
# ----------------------------------------------------------------------------

@dataclass
class SolveOutcome:
    """Aggregated outcome of a distributed CG solve."""

    method: str
    preconditioner: str
    n_parts: int
    n_dofs: int
    iterations: int
    converged: bool
    restarts: int
    setup_time: float
    solve_time: float
    total_time: float
    err_inf: float  # vs analytic solution, inf-norm over all owned dofs
    breakdown: dict[str, float] = field(default_factory=dict)
    #: merged per-rank observability snapshot (phases + counters)
    obs: dict = field(default_factory=dict)
    #: concatenated owned solution blocks in renumbered dof order (only
    #: populated when run_solve(..., return_solution=True))
    solution: np.ndarray | None = None


def _constrain_block(B: sp.csr_matrix, mask: np.ndarray) -> sp.csr_matrix:
    """Zero constrained rows/cols of the preconditioner block, unit diag."""
    n = B.shape[0]
    free = sp.diags((~mask).astype(np.float64))
    fixed = sp.diags(mask.astype(np.float64))
    return (free @ B @ free + fixed).tocsr()


def _solve_program(
    comm, lmesh, tractions, kind, precond, rtol, maxiter, resilience,
    cg_fused, options,
):
    spec: ProblemSpec = OPTIONS_SPEC[0]
    operator = spec.operator
    ndpn = operator.ndpn
    ranges = np.asarray(
        comm.allgather((lmesh.n_begin, lmesh.n_end)), dtype=INDEX_DTYPE
    )
    t0 = comm.vtime
    A = _make_operator(kind, comm, lmesh, operator, ranges, options)
    setup_time = comm.vtime - t0

    # RHS + BC need element-level maps (the assembled operator's maps cover
    # the matrix halo, not the element ghosts)
    if hasattr(A, "e2l_dofs"):
        maps, cmaps = A.maps, A.cmaps
    else:
        maps = build_node_maps(lmesh.e2g, lmesh.n_begin, lmesh.n_end)
        cmaps = build_comm_maps(comm, maps, ranges=ranges)

    f = assemble_rhs(
        comm, lmesh, maps, cmaps, ndpn,
        body_force=spec.body_force, tractions=tractions,
    )

    owned_ids = np.arange(lmesh.n_begin, lmesh.n_end, dtype=INDEX_DTYPE)
    coords = local_node_coords(maps, lmesh)[maps.owned_slice]
    mask = np.zeros(owned_ids.size * ndpn, dtype=bool)
    u0 = np.zeros(owned_ids.size * ndpn)
    for bc in spec.bcs:
        m = bc.mask_slice(lmesh.n_begin, lmesh.n_end)
        vals = bc.values_for(owned_ids, coords).reshape(-1)
        u0[m] = vals[m]
        mask |= m

    apply_hat, b_hat = dirichlet_system(A.apply_owned, f, u0, mask)

    if precond == "none":
        M = None
    elif precond == "jacobi":
        d = A.diagonal_owned()
        d[mask] = 1.0
        M = JacobiPreconditioner(d)
    elif precond == "bjacobi":
        B = _constrain_block(A.owned_block_csr(), mask)
        M = BlockJacobiPreconditioner(B)
    else:
        raise ValueError(f"unknown preconditioner {precond!r}")

    t1 = comm.vtime
    res = cg(
        comm, apply_hat, b_hat, apply_M=M, rtol=rtol, maxiter=maxiter,
        resilience=resilience, fused=cg_fused,
    )
    solve_time = comm.vtime - t1

    exact = spec.analytic_owned(comm.rank)
    err = (
        float(np.abs(res.x - exact).max())
        if exact is not None and res.x.size
        else 0.0
    )
    err = float(comm.allreduce(err, op="max"))

    return {
        "x": res.x,
        "iterations": res.iterations,
        "converged": res.converged,
        "restarts": res.restarts,
        "setup": setup_time,
        "solve": solve_time,
        "total": comm.vtime,
        "err": err,
        "timing": comm.timing.as_dict(),
        "obs": comm.obs.snapshot(),
    }


OPTIONS_SPEC = [None]


def run_solve(
    spec: ProblemSpec,
    method: str,
    precond: str = "jacobi",
    rtol: float = 1e-3,
    maxiter: int = 20000,
    network: NetworkModel | None = None,
    compute_scale: float = 1.0,
    return_solution: bool = False,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    cg_fused: bool = True,
    **options,
) -> SolveOutcome:
    """Distributed CG solve of ``spec`` with one SPMV method.

    ``faults`` injects a :class:`repro.faults.plan.FaultPlan` into the
    simulated network/compute; ``resilience`` enables the CG
    breakdown-detection + restart policy (chaos testing);
    ``cg_fused`` selects the fused-reduction CG iteration (bitwise
    identical iterates, half the allreduce synchronizations).
    """
    p = spec.n_parts
    OPTIONS_SPEC[0] = spec
    rank_args = [
        (
            spec.partition.local(r),
            spec.rank_tractions(r),
            method,
            precond,
            rtol,
            maxiter,
            resilience,
            cg_fused,
            options,
        )
        for r in range(p)
    ]
    results, sim = run_spmd(
        p,
        _solve_program,
        rank_args=rank_args,
        network=network,
        compute_scale=compute_scale,
        faults=faults,
    )
    breakdown: dict[str, float] = {}
    for res in results:
        for k, v in res["timing"].items():
            breakdown[k] = max(breakdown.get(k, 0.0), v)
    r0 = results[0]
    solution = (
        np.concatenate([r["x"] for r in results]) if return_solution else None
    )
    return SolveOutcome(
        method=method,
        preconditioner=precond,
        n_parts=p,
        n_dofs=spec.n_dofs,
        iterations=r0["iterations"],
        converged=bool(r0["converged"]),
        restarts=int(r0["restarts"]),
        setup_time=max(r["setup"] for r in results),
        solve_time=max(r["solve"] for r in results),
        total_time=max(r["total"] for r in results),
        err_inf=r0["err"],
        breakdown=breakdown,
        obs=merge_snapshots([r["obs"] for r in results]),
        solution=solution,
    )
