"""§V-B correctness verification tables (the paper's error studies).

Reproduces both verification problems end-to-end through the distributed
pipeline and reports the error sequences the paper quotes:

* Poisson: "errors are between 23.4e-5 (the coarsest mesh) and 0.1e-5
  (the finest mesh)" under uniform refinement;
* elastic bar: "all meshes give err < 1e-8" (quadratic elements).
"""

from __future__ import annotations

from repro.harness.driver import run_solve
from repro.mesh.element import ElementType
from repro.problems import elastic_bar_problem, poisson_problem
from repro.util.tables import ResultTable

__all__ = ["run"]


def run(scale: str = "small") -> list[ResultTable]:
    out = []

    poisson = ResultTable(
        "§V-B verification: Poisson on the unit cube, err_inf vs exact "
        "(paper: 23.4e-5 at 10^3 down to 0.1e-5 at 160^3)",
        ["mesh", "dofs", "method", "err_inf", "err_x_1e5"],
    )
    sizes = (5, 10, 20) if scale == "small" else (10, 20, 40)
    for nel in sizes:
        spec = poisson_problem(nel, 4)
        o = run_solve(spec, "hymv", precond="jacobi", rtol=1e-11)
        poisson.add_row(f"{nel}^3", spec.n_dofs, "hymv", o.err_inf,
                        o.err_inf * 1e5)
    poisson.add_note("z-slab partition into 4, matching the paper's setup")
    out.append(poisson)

    bar = ResultTable(
        "§V-B verification: hanging elastic bar, err_inf vs Timoshenko "
        "solution (paper: < 1e-8 for quadratic elements)",
        ["mesh", "etype", "parts", "err_inf"],
    )
    cases = [(4, ElementType.HEX20, 2), (8, ElementType.HEX20, 4)]
    if scale != "small":
        cases.append((16, ElementType.HEX20, 8))
    cases.append((3, ElementType.HEX27, 2))
    for nel, etype, p in cases:
        spec = elastic_bar_problem(nel, p, etype)
        o = run_solve(spec, "hymv", precond="bjacobi", rtol=1e-12,
                      maxiter=6000)
        bar.add_row(f"{nel}^3", etype.value, p, o.err_inf)
    bar.add_note(
        "linear elements show the standard O(h^2) error instead (the "
        "quadratic exact solution is outside the linear FE space) — see "
        "EXPERIMENTS.md"
    )
    out.append(bar)
    return out
