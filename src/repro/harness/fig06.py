"""Fig. 6: Elasticity with 20-node quadratic hexes — pure MPI vs hybrid
MPI+OpenMP.

(a) weak scaling at 33.5K DoFs/rank: hybrid HYMV SPMV averages 1.7x
    faster than PETSc; (b) strong scaling at 174M DoFs: 1.2x.
"""

from __future__ import annotations

from repro.fem.operators import ElasticityOperator
from repro.harness.series import emulated_scaling_table
from repro.mesh.element import ElementType
from repro.perfmodel.scaling import strong_scaling_series, weak_scaling_series
from repro.util.tables import ResultTable

__all__ = ["run"]

PAPER_WEAK_CORES = [56, 112, 224, 448, 896, 1792, 3584, 7168, 14336, 28672]
PAPER_STRONG_CORES = [896, 1792, 3584, 7168, 14336]


def _hybrid_table(title, mode, cores, **kw) -> ResultTable:
    op = ElasticityOperator()
    table = ResultTable(title, ["cores", "series", "spmv10_s"])
    runner = weak_scaling_series if mode == "weak" else strong_scaling_series
    petsc = runner(["assembled"], cores, etype=ElementType.HEX20, operator=op, **kw)
    mpi = runner(["hymv"], cores, etype=ElementType.HEX20, operator=op, **kw)
    hyb = runner(
        ["hymv"], cores, etype=ElementType.HEX20, operator=op, threads=28, **kw
    )
    for i, c in enumerate(cores):
        table.add_row(c, "petsc", petsc["assembled"][i].spmv_time)
        table.add_row(c, "hymv pure-MPI", mpi["hymv"][i].spmv_time)
        table.add_row(c, "hymv hybrid (28 thr)", hyb["hymv"][i].spmv_time)
    return table


def run(scale: str = "small") -> list[ResultTable]:
    op = ElasticityOperator()
    out = []
    p_list = [1, 2, 4] if scale == "small" else [1, 2, 4, 8]
    weak_em = emulated_scaling_table(
        "Fig 6a (emulated tier): elasticity Hex20 weak scaling (pure MPI)",
        "elastic", ElementType.HEX20, op, ["hymv", "assembled"], "weak",
        p_list, dofs_per_rank=1200.0,
    )
    weak_em.add_note(
        "hybrid MPI+OpenMP is a modeled series (no real threading here)"
    )
    out.append(weak_em)

    weak_mod = _hybrid_table(
        "Fig 6a (modeled tier, Frontera): Hex20 elasticity weak scaling, "
        "33.5K DoFs/rank — pure MPI vs hybrid",
        "weak", PAPER_WEAK_CORES, dofs_per_rank=33.5e3,
    )
    weak_mod.add_note("paper: hybrid HYMV SPMV 1.7x faster than PETSc on average")
    out.append(weak_mod)

    strong_mod = _hybrid_table(
        "Fig 6b (modeled tier, Frontera): Hex20 elasticity strong scaling, "
        "174M DoFs",
        "strong", PAPER_STRONG_CORES, total_dofs=174e6,
    )
    strong_mod.add_note("paper: hybrid HYMV SPMV 1.2x faster than PETSc on average")
    out.append(strong_mod)
    return out
