"""Mesh sizing helpers for the emulated experiment tier.

The emulation runs the real algorithms at laptop scale: the paper's
granularities (11.3K–33.5K dofs per rank over up to 28,672 ranks) are
scaled down to ``dofs_per_rank`` over ``p <= 16`` ranks while keeping the
weak/strong protocol identical.
"""

from __future__ import annotations

from repro.fem.operators import Operator
from repro.mesh.element import ElementType

__all__ = ["box_dims_for_dofs"]

_NODES_PER_ELEM = {
    ElementType.HEX8: 1.0,
    ElementType.HEX20: 4.0,
    ElementType.HEX27: 8.0,
    ElementType.TET4: 1.0 / 6.0,
    ElementType.TET10: 4.0 / 3.0,
}


def box_dims_for_dofs(
    etype: ElementType,
    operator: Operator,
    total_dofs: float,
    min_side: int = 2,
) -> tuple[int, int, int]:
    """Box element counts giving approximately ``total_dofs`` dofs.

    For tet meshes the returned dimensions are those of the *underlying
    hex grid* handed to :func:`repro.mesh.box_tet_mesh`.
    """
    nodes = total_dofs / operator.ndpn
    elements = nodes / _NODES_PER_ELEM[etype]
    if etype.is_tet:
        elements /= 6.0  # hexes in the underlying grid
    side = max(min_side, round(elements ** (1.0 / 3.0)))
    # stretch z to hit the target count more closely
    nz = max(min_side, round(elements / (side * side)))
    return side, side, nz
