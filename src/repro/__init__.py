"""repro — HYMV: a scalable adaptive-matrix SPMV for heterogeneous
architectures (IPDPS 2022), reproduced in Python.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.mesh` — elements, quadrature, structured/unstructured
  meshes, refinement, quality.
* :mod:`repro.partition` — slab/RCB/graph partitioners (METIS substitute).
* :mod:`repro.fem` — operators, loads, boundary conditions, exact
  solutions.
* :mod:`repro.simmpi` — the simulated MPI runtime.
* :mod:`repro.core` — HYMV itself (maps, distributed arrays, SPMV,
  adaptive updates).
* :mod:`repro.baselines` — matrix-assembled / matrix-free /
  partial-assembly / serial reference.
* :mod:`repro.gpu` — the simulated GPU backend (Algorithm 3).
* :mod:`repro.solvers` — distributed CG and preconditioners.
* :mod:`repro.perfmodel` — the Frontera-calibrated performance model.
* :mod:`repro.harness` — per-figure/table experiment drivers
  (``python -m repro.harness``).
* :mod:`repro.problems` — the paper's verification problems, packaged.
"""

__version__ = "1.0.0"

from repro.core import DistributedArray, HymvOperator
from repro.harness import run_bench, run_solve
from repro.mesh import ElementType, box_hex_mesh, box_tet_mesh
from repro.partition import build_partition
from repro.problems import elastic_bar_problem, poisson_problem
from repro.simmpi import run_spmd

__all__ = [
    "__version__",
    "HymvOperator",
    "DistributedArray",
    "ElementType",
    "box_hex_mesh",
    "box_tet_mesh",
    "build_partition",
    "poisson_problem",
    "elastic_bar_problem",
    "run_bench",
    "run_solve",
    "run_spmd",
]
